package load

import (
	"fmt"
	"sync"
	"time"

	"correctables/internal/binding"
	"correctables/internal/netsim"
)

// Config tunes a Controller.
type Config struct {
	// Clock drives the sampler and all bucket refills (required).
	Clock netsim.Clock

	// PerClientRate / PerClientBurst configure the static per-client token
	// buckets (tokens/second and capacity), keyed by the client's
	// binding.WithLabel identity. Rate <= 0 disables per-client limiting.
	PerClientRate  float64
	PerClientBurst float64

	// Sample reads the backpressure signal: the coordinator's current
	// queueing delay (netsim.Server.QueueDelay of the contact replica).
	// nil disables adaptive backpressure and degraded mode — the
	// controller is then a plain per-client rate limiter.
	Sample func() time.Duration
	// SampleEvery is the model-time sampling period (default 50ms).
	SampleEvery time.Duration
	// Threshold is the queue delay above which a sample counts as
	// overload (default 50ms). AIMD reacts per sample; degraded mode
	// reacts to runs of samples (hysteresis below).
	Threshold time.Duration

	// The AIMD admit-rate bucket: every over-threshold sample multiplies
	// the global admit rate by DecreaseFactor (default 0.5), every clean
	// sample adds IncreasePerSample (default MaxRate/16), clamped to
	// [MinRate, MaxRate]. MaxRate is required when Sample is set; size it
	// at or above the coordinator's capacity so the bucket is invisible
	// when healthy.
	MinRate, MaxRate  float64
	IncreasePerSample float64
	DecreaseFactor    float64

	// DegradeToWeak enables degrade-to-preliminary shedding: after
	// EnterAfter consecutive over-threshold samples (default 2) admitted
	// reads are served at the weakest level only, until ExitAfter
	// consecutive clean samples (default 4). The asymmetric run lengths
	// are the hysteresis that keeps the mode from flapping when the queue
	// delay hovers at the threshold.
	DegradeToWeak bool
	EnterAfter    int
	ExitAfter     int

	// Meter, when set, accounts rejections and sheds on the client link
	// class (netsim.Meter AccountRejected/AccountShed).
	Meter *netsim.Meter
}

func (c Config) withDefaults() Config {
	if c.SampleEvery <= 0 {
		c.SampleEvery = 50 * time.Millisecond
	}
	if c.Threshold <= 0 {
		c.Threshold = 50 * time.Millisecond
	}
	if c.DecreaseFactor <= 0 || c.DecreaseFactor >= 1 {
		c.DecreaseFactor = 0.5
	}
	if c.IncreasePerSample <= 0 {
		c.IncreasePerSample = c.MaxRate / 16
	}
	if c.MinRate <= 0 {
		c.MinRate = c.MaxRate / 64
	}
	if c.EnterAfter <= 0 {
		c.EnterAfter = 2
	}
	if c.ExitAfter <= 0 {
		c.ExitAfter = 4
	}
	return c
}

// Controller is the coordinator-side admission gate: per-client token
// buckets in front of an adaptive (AIMD) global admit-rate bucket, with
// optional degrade-to-preliminary shedding under sustained backpressure.
// It implements binding.AdmissionGate; attach it to clients with
// binding.WithAdmission and start the sampler with Start.
//
// Decision order per attempt: the client's own bucket first (an abusive
// client is rejected regardless of global health), then the global
// adaptive bucket (backpressure rejects are the zero-cost shed that lets
// the backlog drain), and only then — for admitted non-mutating work while
// degraded mode is engaged — the Degrade verdict. Degraded reads still
// spend a global token: a weak read is cheap, not free, and admitting
// unbounded weak reads into a saturated coordinator would re-create the
// queue the mode exists to drain.
//
// All state transitions happen either under the mutex (Admit) or in the
// sampler callback, both in model time, so a virtual-clock run replays
// byte-identically per seed.
type Controller struct {
	cfg Config

	mu       sync.Mutex
	global   *TokenBucket // nil when adaptive backpressure is off
	clients  map[string]*TokenBucket
	over     int // consecutive over-threshold samples
	under    int // consecutive clean samples
	degraded bool
	stopped  bool
	started  bool
}

// NewController builds a controller; call Start to run the backpressure
// sampler.
func NewController(cfg Config) *Controller {
	if cfg.Clock == nil {
		panic("load: Config.Clock is required")
	}
	if cfg.Sample != nil && cfg.MaxRate <= 0 {
		panic("load: Config.MaxRate is required with adaptive backpressure")
	}
	cfg = cfg.withDefaults()
	c := &Controller{cfg: cfg, clients: map[string]*TokenBucket{}}
	if cfg.Sample != nil {
		c.global = NewTokenBucket(cfg.MaxRate, cfg.MaxRate*cfg.SampleEvery.Seconds()*4)
	}
	return c
}

// Start arms the self-rescheduling sampler callback. Idempotent; a
// stopped controller does not restart.
func (c *Controller) Start() {
	c.mu.Lock()
	if c.started || c.stopped || c.cfg.Sample == nil {
		c.mu.Unlock()
		return
	}
	c.started = true
	c.mu.Unlock()
	var tick func()
	tick = func() {
		if !c.sample() {
			return
		}
		c.cfg.Clock.RunAfter(c.cfg.SampleEvery, tick)
	}
	c.cfg.Clock.RunAfter(c.cfg.SampleEvery, tick)
}

// Stop halts the sampler at its next tick (the pending callback sees the
// flag and does not reschedule, so a VirtualClock drains cleanly).
func (c *Controller) Stop() {
	c.mu.Lock()
	c.stopped = true
	c.mu.Unlock()
}

// Degraded reports whether degrade-to-preliminary shedding is engaged.
func (c *Controller) Degraded() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.degraded
}

// AdmitRate returns the current global admit rate (ops/second), or 0 when
// adaptive backpressure is off.
func (c *Controller) AdmitRate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.global == nil {
		return 0
	}
	return c.global.Rate()
}

// sample takes one backpressure sample and applies AIMD + hysteresis;
// reports whether the sampler should keep running.
func (c *Controller) sample() bool {
	d := c.cfg.Sample()
	now := c.cfg.Clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return false
	}
	rate := c.global.Rate()
	if d > c.cfg.Threshold {
		c.over++
		c.under = 0
		rate *= c.cfg.DecreaseFactor
		if rate < c.cfg.MinRate {
			rate = c.cfg.MinRate
		}
		if c.cfg.DegradeToWeak && c.over >= c.cfg.EnterAfter {
			c.degraded = true
		}
	} else {
		c.under++
		c.over = 0
		rate += c.cfg.IncreasePerSample
		if rate > c.cfg.MaxRate {
			rate = c.cfg.MaxRate
		}
		if c.degraded && c.under >= c.cfg.ExitAfter {
			c.degraded = false
		}
	}
	c.global.SetRate(rate, now)
	return true
}

// Admit implements binding.AdmissionGate.
func (c *Controller) Admit(client string, op binding.Operation) (binding.AdmissionDecision, error) {
	now := c.cfg.Clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cfg.PerClientRate > 0 {
		tb := c.clients[client]
		if tb == nil {
			tb = NewTokenBucket(c.cfg.PerClientRate, c.cfg.PerClientBurst)
			c.clients[client] = tb
		}
		if !tb.Take(now) {
			c.cfg.Meter.AccountRejected(netsim.LinkClient)
			return binding.AdmissionReject,
				fmt.Errorf("%w: client %q over its rate limit (%.0f ops/s)", ErrRejected, client, c.cfg.PerClientRate)
		}
	}
	if c.global != nil && !c.global.Take(now) {
		c.cfg.Meter.AccountRejected(netsim.LinkClient)
		return binding.AdmissionReject,
			fmt.Errorf("%w: coordinator backpressure (admit rate %.0f ops/s)", ErrRejected, c.global.Rate())
	}
	if c.degraded && !mutates(op) {
		c.cfg.Meter.AccountShed(netsim.LinkClient)
		return binding.AdmissionDegrade, nil
	}
	return binding.AdmissionAdmit, nil
}

// mutates mirrors the client library's read-only classification.
func mutates(op binding.Operation) bool {
	m, ok := op.(binding.Mutator)
	return ok && m.OpMutates()
}
