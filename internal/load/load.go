// Package load generates overload and contains it. The fault layer
// (internal/faults) covers partitions and crashes; this package covers the
// most common production incident — too much traffic — and ICG's answer to
// it: preliminary views as a cheap degraded mode.
//
// It has three parts, all driven by the simulation clock so every run is
// seed-replayable:
//
//   - Open-loop arrival processes (Poisson, OnOff) scheduled as RunAfter
//     callbacks. Closed-loop YCSB threads self-throttle — when the server
//     slows down, so do they — which hides overload by design; an open-loop
//     source keeps offering work at its own rate, which is what makes
//     queues grow and retry storms possible.
//   - A Controller implementing binding.AdmissionGate at the coordinator:
//     per-client token buckets (static rate limits) plus adaptive
//     backpressure — an AIMD admit-rate bucket driven by a queue-delay
//     probe sampled over model time. Rejections carry ErrRejected, typed
//     and retryable.
//   - Degrade-to-preliminary shedding: under sustained backpressure
//     (hysteresis-guarded, so the mode doesn't flap at the threshold) the
//     controller answers AdmissionDegrade for reads, and the client
//     library serves them at the binding's weakest level only. Sessions
//     still enforce read-your-writes over the degraded views via version
//     floors — the guarantee the overload experiment's history check
//     verifies.
//
// The retry side of a storm lives in binding.RetryPolicy (client-side,
// where retries actually originate); the bench overload experiment wires
// both together and measures the metastable asymmetry.
package load

// ErrRejected is the typed admission-rejection error: a Controller refuses
// work with an error wrapping it. It is retryable (binding.IsRetryable
// reports true), because rejection is a transient, load-dependent verdict —
// which is exactly what lets a retry policy turn rejections into the
// polite, backed-off retries that drain a storm instead of feeding it.
// Check with errors.Is.
var ErrRejected error = retryableError("load: rejected by admission control")

// retryableError is a sentinel string error declaring itself retryable.
type retryableError string

func (e retryableError) Error() string { return string(e) }
func (retryableError) Retryable() bool { return true }
