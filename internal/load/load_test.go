package load

import (
	"testing"
	"time"

	"correctables/internal/binding"
	"correctables/internal/netsim"
)

// TestPoissonScheduleReplaysPerSeed: the whole point of building arrivals
// on the virtual clock — the same seed produces the identical open-loop
// schedule, instant for instant.
func TestPoissonScheduleReplaysPerSeed(t *testing.T) {
	run := func(seed int64) []time.Duration {
		clock := netsim.NewVirtualClock()
		var at []time.Duration
		Start(clock, NewPoisson(500, seed), 2*time.Second, func(int) {
			at = append(at, clock.Now())
		})
		clock.Drain()
		return at
	}
	a, b := run(7), run(7)
	if len(a) == 0 {
		t.Fatal("no arrivals scheduled")
	}
	if len(a) != len(b) {
		t.Fatalf("replay arrival counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d at %v vs %v on replay", i, a[i], b[i])
		}
	}
	// Sanity on the rate: ~500/s over 2s of model time.
	if n := len(a); n < 700 || n > 1300 {
		t.Errorf("Poisson(500) produced %d arrivals in 2s, want ~1000", n)
	}
	if c := run(8); len(c) == len(a) && c[0] == a[0] && c[len(c)-1] == a[len(a)-1] {
		t.Error("different seeds produced an identical-looking schedule")
	}
}

// TestOnOffRespectsOffWindows: no arrival may land inside an off window,
// and both on windows must see traffic.
func TestOnOffRespectsOffWindows(t *testing.T) {
	clock := netsim.NewVirtualClock()
	const on, off = 100 * time.Millisecond, 200 * time.Millisecond
	var at []time.Duration
	Start(clock, NewOnOff(1000, on, off, 3), 600*time.Millisecond, func(int) {
		at = append(at, clock.Now())
	})
	clock.Drain()
	if len(at) == 0 {
		t.Fatal("no arrivals")
	}
	seenCycle := map[time.Duration]bool{}
	for _, a := range at {
		cycle := a / (on + off)
		within := a - cycle*(on+off)
		if within >= on {
			t.Fatalf("arrival at %v falls %v into the cycle, inside the off window", a, within)
		}
		seenCycle[cycle] = true
	}
	if !seenCycle[0] || !seenCycle[1] {
		t.Errorf("on windows hit: %v, want both cycle 0 and 1", seenCycle)
	}
}

// TestTokenBucketBurstBoundary: exactly Burst immediate takes succeed from
// a full bucket; the next fails.
func TestTokenBucketBurstBoundary(t *testing.T) {
	b := NewTokenBucket(10, 5)
	now := time.Duration(0)
	for i := 0; i < 5; i++ {
		if !b.Take(now) {
			t.Fatalf("take %d of burst 5 refused", i+1)
		}
	}
	if b.Take(now) {
		t.Fatal("take 6 of burst 5 admitted")
	}
}

// TestTokenBucketRefillAcrossVirtualTimeJump: a long idle jump refills to
// exactly the burst capacity (no unbounded credit), and refill accrues
// fractionally.
func TestTokenBucketRefillAcrossVirtualTimeJump(t *testing.T) {
	b := NewTokenBucket(10, 5) // 10 tokens/s, capacity 5
	for i := 0; i < 5; i++ {
		b.Take(0)
	}
	// 100ms refills exactly one token.
	if !b.Take(100 * time.Millisecond) {
		t.Fatal("one refilled token not granted after 100ms")
	}
	if b.Take(100 * time.Millisecond) {
		t.Fatal("second take granted from a single refilled token")
	}
	// A 10-minute virtual-time jump credits only the burst capacity.
	later := 10 * time.Minute
	if got := b.Tokens(later); got != 5 {
		t.Fatalf("after a long idle jump bucket holds %v tokens, want exactly burst 5", got)
	}
	for i := 0; i < 5; i++ {
		if !b.Take(later) {
			t.Fatalf("take %d after refill refused", i+1)
		}
	}
	if b.Take(later) {
		t.Fatal("bucket over-credited across the time jump")
	}
}

// hoverSample returns a Sample func alternating just-over/just-under the
// threshold — the adversarial input for hysteresis.
func hoverSample(threshold time.Duration) func() time.Duration {
	i := 0
	return func() time.Duration {
		i++
		if i%2 == 0 {
			return threshold + time.Millisecond
		}
		return threshold - time.Millisecond
	}
}

// TestBackpressureHysteresisNoFlapping: a queue delay hovering around the
// threshold must not flap degraded mode — alternating samples never
// produce the consecutive run lengths the mode transitions require.
func TestBackpressureHysteresisNoFlapping(t *testing.T) {
	clock := netsim.NewVirtualClock()
	c := NewController(Config{
		Clock:         clock,
		Sample:        hoverSample(50 * time.Millisecond),
		SampleEvery:   10 * time.Millisecond,
		Threshold:     50 * time.Millisecond,
		MaxRate:       1000,
		DegradeToWeak: true,
		EnterAfter:    2,
		ExitAfter:     4,
	})
	c.Start()
	transitions := 0
	last := c.Degraded()
	clock.Go(func() {
		for i := 0; i < 100; i++ {
			clock.Sleep(10 * time.Millisecond)
			if d := c.Degraded(); d != last {
				transitions++
				last = d
			}
		}
		c.Stop()
	})
	clock.Drain()
	if transitions != 0 {
		t.Errorf("degraded mode flapped %d times on threshold-hovering samples", transitions)
	}
	if last {
		t.Error("alternating samples engaged degraded mode without a sustained over-threshold run")
	}
}

// TestControllerDegradeEnterAndExit: sustained overload engages degraded
// mode after EnterAfter samples; sustained health disengages it after
// ExitAfter — and a sample exactly AT the threshold counts as clean.
func TestControllerDegradeEnterAndExit(t *testing.T) {
	clock := netsim.NewVirtualClock()
	delay := 200 * time.Millisecond // over
	c := NewController(Config{
		Clock:         clock,
		Sample:        func() time.Duration { return delay },
		SampleEvery:   10 * time.Millisecond,
		Threshold:     50 * time.Millisecond,
		MaxRate:       1000,
		MinRate:       10,
		DegradeToWeak: true,
		EnterAfter:    3,
		ExitAfter:     2,
	})
	c.Start()
	clock.Go(func() {
		clock.Sleep(25 * time.Millisecond) // 2 samples < EnterAfter
		if c.Degraded() {
			t.Error("degraded after only 2 over-threshold samples (EnterAfter 3)")
		}
		clock.Sleep(20 * time.Millisecond) // 4 samples total
		if !c.Degraded() {
			t.Error("not degraded after 4 consecutive over-threshold samples")
		}
		if rate := c.AdmitRate(); rate >= 1000 {
			t.Errorf("admit rate %v did not decrease under overload", rate)
		}
		delay = 50 * time.Millisecond // exactly at threshold = clean
		clock.Sleep(25 * time.Millisecond)
		if c.Degraded() {
			t.Error("still degraded after ExitAfter clean samples")
		}
		c.Stop()
	})
	clock.Drain()
}

// TestControllerPerClientBucketAndMeter: an abusive client is rejected by
// its own bucket with the typed retryable error; a quiet client on the
// same gate is admitted; the meter accounts the outcomes.
func TestControllerPerClientBucketAndMeter(t *testing.T) {
	clock := netsim.NewVirtualClock()
	meter := netsim.NewMeter()
	c := NewController(Config{
		Clock:          clock,
		PerClientRate:  100,
		PerClientBurst: 2,
		Meter:          meter,
	})
	op := binding.Get{Key: "k"}
	for i := 0; i < 2; i++ {
		if dec, err := c.Admit("hog", op); dec != binding.AdmissionAdmit || err != nil {
			t.Fatalf("burst take %d: dec=%v err=%v", i+1, dec, err)
		}
	}
	dec, err := c.Admit("hog", op)
	if dec != binding.AdmissionReject {
		t.Fatalf("over-burst attempt admitted (dec=%v)", dec)
	}
	if !binding.IsRetryable(err) {
		t.Errorf("rejection error %v is not retryable", err)
	}
	if dec, err := c.Admit("quiet", op); dec != binding.AdmissionAdmit || err != nil {
		t.Errorf("quiet client hit the hog's bucket: dec=%v err=%v", dec, err)
	}
	ls := meter.Load(netsim.LinkClient)
	if ls.Rejected != 1 || ls.Shed != 0 {
		t.Errorf("meter load stats %+v, want exactly 1 rejection", ls)
	}
	meter.AccountRetried(netsim.LinkClient)
	if got := meter.Load(netsim.LinkClient).Retried; got != 1 {
		t.Errorf("retried counter %d, want 1", got)
	}
	snap := meter.SnapshotLoad()
	if snap[netsim.LinkClient].Rejected != 1 {
		t.Errorf("snapshot %+v missing the rejection", snap)
	}
	meter.Reset()
	if got := meter.Load(netsim.LinkClient); got != (netsim.LoadStats{}) {
		t.Errorf("reset left load stats %+v", got)
	}
}
