package core

import (
	"sync"
	"time"
)

// Event is a one-shot broadcast: Wait blocks until Fire has been called.
// Fire is idempotent.
type Event interface {
	Fire()
	Wait()
}

// Scheduler abstracts how a Correctable spawns helper goroutines, how its
// consumers block, and what "now" means for the views it delivers. The
// default scheduler uses plain goroutines and channels. Bindings backed by
// a simulated substrate supply the substrate's clock instead, so that
// waiting on a Correctable parks a simulation actor rather than freezing a
// discrete-event scheduler: under netsim's VirtualClock this is what lets
// a whole experiment run at CPU speed, deterministically.
type Scheduler interface {
	// Go runs fn on a new goroutine/actor.
	Go(fn func())
	// NewEvent returns a one-shot broadcast usable by this scheduler's
	// goroutines.
	NewEvent() Event
	// After runs fn once d has elapsed on this scheduler's time axis:
	// host time for the default scheduler, model time for simulation
	// schedulers. There is no cancellation — late fns must be no-ops
	// (Controller methods after closure already are).
	After(d time.Duration, fn func())
	// Now returns the current instant on this scheduler's time axis:
	// monotonic process time for the default scheduler, model time for
	// simulation schedulers. View.At timestamps come from here, which is
	// what makes recorded histories replay byte-identically under a
	// virtual clock.
	Now() time.Duration
}

// DefaultScheduler spawns plain goroutines and blocks on channels — the
// right choice outside a simulation.
var DefaultScheduler Scheduler = goScheduler{}

// processEpoch anchors the default scheduler's monotonic time axis.
var processEpoch = time.Now()

type goScheduler struct{}

func (goScheduler) Go(fn func())                     { go fn() }
func (goScheduler) NewEvent() Event                  { return &chanEvent{ch: make(chan struct{})} }
func (goScheduler) After(d time.Duration, fn func()) { time.AfterFunc(d, fn) }
func (goScheduler) Now() time.Duration               { return time.Since(processEpoch) }

// chanEvent is the default chan-backed Event. Its channel is also used
// directly by context-aware waits (select on cancellation).
type chanEvent struct {
	once sync.Once
	ch   chan struct{}
}

func (e *chanEvent) Fire() { e.once.Do(func() { close(e.ch) }) }
func (e *chanEvent) Wait() { <-e.ch }
