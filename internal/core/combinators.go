package core

import "sync"

// Then returns a Correctable whose views are f applied to each of c's views
// (monadic chaining, inherited from modern Promises). f runs synchronously
// in the delivery path and must be fast; use Speculate for heavy work. If f
// returns an error on the final view the result fails; errors on preliminary
// views suppress that view.
func (c *Correctable) Then(f func(View) (interface{}, error)) *Correctable {
	out, ctrl := c.derive(c.Levels())
	c.SetCallbacks(Callbacks{
		OnUpdate: func(v View) {
			mapped, err := f(v)
			if err != nil {
				if v.Final {
					_ = ctrl.Fail(err)
				}
				return
			}
			if v.Final {
				_ = ctrl.Close(mapped, v.Level)
			} else {
				_ = ctrl.Update(mapped, v.Level)
			}
		},
		OnError: func(err error) { _ = ctrl.Fail(err) },
	})
	return out
}

// All aggregates several Correctables into one. Each update of any child
// produces an update of the aggregate whose value is a []interface{} with
// the latest value of every child (nil where none arrived yet). The
// aggregate closes when all children have closed, at the weakest of the
// children's final levels; it fails on the first child error.
func All(cs ...*Correctable) *Correctable {
	out, ctrl := NewScheduled(schedOf(cs), nil)
	if len(cs) == 0 {
		_ = ctrl.Close([]interface{}{}, LevelStrong)
		return out
	}
	var (
		mu        sync.Mutex
		latest    = make([]interface{}, len(cs))
		finals    = make([]bool, len(cs))
		levels    = make([]Level, len(cs))
		remaining = len(cs)
		failed    bool
	)
	snapshot := func() []interface{} {
		cp := make([]interface{}, len(latest))
		copy(cp, latest)
		return cp
	}
	for i, c := range cs {
		i := i
		c.SetCallbacks(Callbacks{
			OnUpdate: func(v View) {
				mu.Lock()
				if failed {
					mu.Unlock()
					return
				}
				latest[i] = v.Value
				if v.Final && !finals[i] {
					finals[i] = true
					levels[i] = v.Level
					remaining--
				}
				doClose := remaining == 0
				val := snapshot()
				lvl := v.Level
				if doClose {
					lvl = Levels(levels).Weakest()
				}
				mu.Unlock()
				if doClose {
					_ = ctrl.Close(val, lvl)
				} else {
					_ = ctrl.Update(val, lvl)
				}
			},
			OnError: func(err error) {
				mu.Lock()
				already := failed
				failed = true
				mu.Unlock()
				if !already {
					_ = ctrl.Fail(err)
				}
			},
		})
	}
	return out
}

// Any returns a Correctable mirroring whichever child closes first.
// Preliminary views from all children are forwarded until then.
func Any(cs ...*Correctable) *Correctable {
	out, ctrl := NewScheduled(schedOf(cs), nil)
	if len(cs) == 0 {
		_ = ctrl.Fail(ErrNoView)
		return out
	}
	var (
		mu       sync.Mutex
		decided  bool
		failures int
	)
	for _, c := range cs {
		c.SetCallbacks(Callbacks{
			OnUpdate: func(v View) {
				mu.Lock()
				if decided {
					mu.Unlock()
					return
				}
				if v.Final {
					decided = true
				}
				mu.Unlock()
				if v.Final {
					_ = ctrl.Close(v.Value, v.Level)
				} else {
					_ = ctrl.Update(v.Value, v.Level)
				}
			},
			OnError: func(err error) {
				mu.Lock()
				failures++
				last := failures == len(cs) && !decided
				if last {
					decided = true
				}
				mu.Unlock()
				if last {
					_ = ctrl.Fail(err)
				}
			},
		})
	}
	return out
}

// schedOf returns the scheduler shared by a combinator's children: the
// first explicitly scheduled child's scheduler (children of one combinator
// come from one binding in practice), or nil for the default.
func schedOf(cs []*Correctable) Scheduler {
	for _, c := range cs {
		if c.sched != nil {
			return c.sched
		}
	}
	return nil
}

// Resolved returns an already-final Correctable carrying value at level.
// Useful for tests and for bindings that can answer from local state.
func Resolved(value interface{}, level Level) *Correctable {
	c, ctrl := New()
	_ = ctrl.Close(value, level)
	return c
}

// Failed returns an already-errored Correctable.
func Failed(err error) *Correctable {
	c, ctrl := New()
	_ = ctrl.Fail(err)
	return c
}
