package core

import "sync"

// Then returns a Correctable whose views are f applied to each of c's views
// (monadic chaining, inherited from modern Promises). f runs synchronously
// in the delivery path and must be fast; use Speculate for heavy work. If f
// returns an error on the final view the result fails; errors on preliminary
// views suppress that view. This method keeps the value type; use Map for
// type-changing chains.
func (c *Correctable[T]) Then(f func(View[T]) (T, error)) *Correctable[T] {
	return Map(c, f)
}

// Map is the type-changing form of Then: it returns a Correctable[Out]
// whose views are f applied to each of c's views.
func Map[In, Out any](c *Correctable[In], f func(View[In]) (Out, error)) *Correctable[Out] {
	out, ctrl := deriveAs[Out](c, c.Levels())
	c.SetCallbacks(Callbacks[In]{
		OnUpdate: func(v View[In]) {
			mapped, err := f(v)
			if err != nil {
				if v.Final {
					_ = ctrl.Fail(err)
				}
				return
			}
			if v.Final {
				_ = ctrl.Close(mapped, v.Level)
			} else {
				_ = ctrl.Update(mapped, v.Level)
			}
		},
		OnError: func(err error) { _ = ctrl.Fail(err) },
	})
	return out
}

// All aggregates several Correctables into one. Each update of any child
// produces an update of the aggregate whose value is a []T with the latest
// value of every child (the zero T where none arrived yet). The aggregate
// closes when all children have closed, at the weakest of the children's
// final levels; it fails on the first child error.
func All[T any](cs ...*Correctable[T]) *Correctable[[]T] {
	out, ctrl := NewScheduled[[]T](schedOf(cs), nil)
	if len(cs) == 0 {
		_ = ctrl.Close([]T{}, LevelStrong)
		return out
	}
	var (
		mu        sync.Mutex
		latest    = make([]T, len(cs))
		finals    = make([]bool, len(cs))
		levels    = make([]Level, len(cs))
		remaining = len(cs)
		failed    bool
	)
	snapshot := func() []T {
		cp := make([]T, len(latest))
		copy(cp, latest)
		return cp
	}
	for i, c := range cs {
		i := i
		c.SetCallbacks(Callbacks[T]{
			OnUpdate: func(v View[T]) {
				mu.Lock()
				if failed {
					mu.Unlock()
					return
				}
				latest[i] = v.Value
				if v.Final && !finals[i] {
					finals[i] = true
					levels[i] = v.Level
					remaining--
				}
				doClose := remaining == 0
				val := snapshot()
				lvl := v.Level
				if doClose {
					lvl = Levels(levels).Weakest()
				}
				mu.Unlock()
				if doClose {
					_ = ctrl.Close(val, lvl)
				} else {
					_ = ctrl.Update(val, lvl)
				}
			},
			OnError: func(err error) {
				mu.Lock()
				already := failed
				failed = true
				mu.Unlock()
				if !already {
					_ = ctrl.Fail(err)
				}
			},
		})
	}
	return out
}

// Any returns a Correctable mirroring whichever child closes first.
// Preliminary views from all children are forwarded until then.
func Any[T any](cs ...*Correctable[T]) *Correctable[T] {
	out, ctrl := NewScheduled[T](schedOf(cs), nil)
	if len(cs) == 0 {
		_ = ctrl.Fail(ErrNoView)
		return out
	}
	var (
		mu       sync.Mutex
		decided  bool
		failures int
	)
	for _, c := range cs {
		c.SetCallbacks(Callbacks[T]{
			OnUpdate: func(v View[T]) {
				mu.Lock()
				if decided {
					mu.Unlock()
					return
				}
				if v.Final {
					decided = true
				}
				mu.Unlock()
				if v.Final {
					_ = ctrl.Close(v.Value, v.Level)
				} else {
					_ = ctrl.Update(v.Value, v.Level)
				}
			},
			OnError: func(err error) {
				mu.Lock()
				failures++
				last := failures == len(cs) && !decided
				if last {
					decided = true
				}
				mu.Unlock()
				if last {
					_ = ctrl.Fail(err)
				}
			},
		})
	}
	return out
}

// schedOf returns the scheduler shared by a combinator's children: the
// first explicitly scheduled child's scheduler (children of one combinator
// come from one binding in practice), or nil for the default.
func schedOf[T any](cs []*Correctable[T]) Scheduler {
	for _, c := range cs {
		if c.sched != nil {
			return c.sched
		}
	}
	return nil
}

// Resolved returns an already-final Correctable carrying value at level.
// Useful for tests and for bindings that can answer from local state.
func Resolved[T any](value T, level Level) *Correctable[T] {
	c, ctrl := New[T]()
	_ = ctrl.Close(value, level)
	return c
}

// Failed returns an already-errored Correctable.
func Failed[T any](err error) *Correctable[T] {
	c, ctrl := New[T]()
	_ = ctrl.Fail(err)
	return c
}
