package core

import (
	"context"
	"errors"
	"testing"
	"testing/quick"
)

func TestThenMapsViews(t *testing.T) {
	c, ctrl := New[any]()
	out := c.Then(func(v View[any]) (interface{}, error) {
		return v.Value.(int) + 100, nil
	})
	var got []interface{}
	out.OnUpdate(func(v View[any]) { got = append(got, v.Value) })
	_ = ctrl.Update(1, LevelWeak)
	_ = ctrl.Close(2, LevelStrong)
	v, err := out.Final(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v.Value != 102 || v.Level != LevelStrong {
		t.Errorf("final = %+v", v)
	}
	if len(got) != 2 || got[0] != 101 || got[1] != 102 {
		t.Errorf("updates = %v", got)
	}
}

func TestThenErrorOnFinalFails(t *testing.T) {
	c, ctrl := New[any]()
	boom := errors.New("map fail")
	out := c.Then(func(v View[any]) (interface{}, error) { return nil, boom })
	_ = ctrl.Close(1, LevelStrong)
	if _, err := out.Final(context.Background()); !errors.Is(err, boom) {
		t.Errorf("err = %v, want %v", err, boom)
	}
}

func TestThenErrorOnPrelimSuppressed(t *testing.T) {
	c, ctrl := New[any]()
	out := c.Then(func(v View[any]) (interface{}, error) {
		if !v.Final {
			return nil, errors.New("skip")
		}
		return v.Value, nil
	})
	_ = ctrl.Update(1, LevelWeak)
	_ = ctrl.Close(2, LevelStrong)
	v, err := out.Final(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v.Value != 2 {
		t.Errorf("final = %v", v.Value)
	}
	if len(out.Views()) != 1 {
		t.Errorf("views = %v, want only the final", out.Views())
	}
}

func TestThenPropagatesSourceError(t *testing.T) {
	c, ctrl := New[any]()
	boom := errors.New("src")
	out := c.Then(func(v View[any]) (interface{}, error) { return v.Value, nil })
	_ = ctrl.Fail(boom)
	if _, err := out.Final(context.Background()); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestAllAggregates(t *testing.T) {
	c1, ctrl1 := New[any]()
	c2, ctrl2 := New[any]()
	out := All(c1, c2)
	_ = ctrl1.Update("a0", LevelWeak)
	_ = ctrl1.Close("a1", LevelStrong)
	_ = ctrl2.Close("b1", LevelCausal)
	v, err := out.Final(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	vals := v.Value
	if vals[0] != "a1" || vals[1] != "b1" {
		t.Errorf("final aggregate = %v", vals)
	}
	// Weakest of the final levels.
	if v.Level != LevelCausal {
		t.Errorf("level = %v, want causal", v.Level)
	}
}

func TestAllEmpty(t *testing.T) {
	out := All[any]()
	v, err := out.Final(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Value) != 0 {
		t.Errorf("value = %v", v.Value)
	}
}

func TestAllFailsOnFirstError(t *testing.T) {
	c1, ctrl1 := New[any]()
	c2, _ := New[any]()
	out := All(c1, c2)
	boom := errors.New("child")
	_ = ctrl1.Fail(boom)
	if _, err := out.Final(context.Background()); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestAnyTakesFirstFinal(t *testing.T) {
	c1, ctrl1 := New[any]()
	c2, ctrl2 := New[any]()
	out := Any(c1, c2)
	_ = ctrl1.Update("slowprelim", LevelWeak)
	_ = ctrl2.Close("fast", LevelWeak)
	v, err := out.Final(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v.Value != "fast" {
		t.Errorf("value = %v", v.Value)
	}
	// Late close of the other child must be ignored without panicking.
	_ = ctrl1.Close("slow", LevelStrong)
	if got, _ := out.Latest(); got.Value != "fast" {
		t.Errorf("latest = %v after late close", got.Value)
	}
}

func TestAnyAllFail(t *testing.T) {
	c1, ctrl1 := New[any]()
	c2, ctrl2 := New[any]()
	out := Any(c1, c2)
	_ = ctrl1.Fail(errors.New("e1"))
	e2 := errors.New("e2")
	_ = ctrl2.Fail(e2)
	if _, err := out.Final(context.Background()); !errors.Is(err, e2) {
		t.Errorf("err = %v, want the last failure", err)
	}
}

func TestAnyEmpty(t *testing.T) {
	out := Any[any]()
	if _, err := out.Final(context.Background()); !errors.Is(err, ErrNoView) {
		t.Errorf("err = %v", err)
	}
}

func TestResolvedAndFailed(t *testing.T) {
	r := Resolved(42, LevelStrong)
	v, err := r.Final(context.Background())
	if err != nil || v.Value != 42 {
		t.Errorf("Resolved: %v, %v", v, err)
	}
	boom := errors.New("x")
	f := Failed[any](boom)
	if _, err := f.Final(context.Background()); !errors.Is(err, boom) {
		t.Errorf("Failed: %v", err)
	}
}

// Property: All over n resolved children closes with exactly their values in
// order.
func TestPropertyAllOrder(t *testing.T) {
	f := func(vals []int) bool {
		cs := make([]*Correctable[any], len(vals))
		for i, v := range vals {
			cs[i] = Resolved[any](v, LevelStrong)
		}
		out := All(cs...)
		fv, err := out.Final(context.Background())
		if err != nil {
			return false
		}
		got := fv.Value
		if len(got) != len(vals) {
			return false
		}
		for i, v := range vals {
			if got[i] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
