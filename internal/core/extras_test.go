package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestWithTimeoutDegradesToLatestView(t *testing.T) {
	c, ctrl := New[any]()
	out := c.WithTimeout(20 * time.Millisecond)
	_ = ctrl.Update("prelim", LevelWeak)
	// The final never arrives in time.
	v, err := out.Final(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v.Value != "prelim" || v.Level != LevelWeak {
		t.Errorf("degraded view = %+v", v)
	}
	// The late close on the source must be ignored without panic.
	_ = ctrl.Close("late", LevelStrong)
	if got, _ := out.Latest(); got.Value != "prelim" {
		t.Errorf("late view leaked: %v", got.Value)
	}
}

func TestWithTimeoutNoViewsFails(t *testing.T) {
	c, _ := New[any]()
	out := c.WithTimeout(10 * time.Millisecond)
	if _, err := out.Final(context.Background()); !errors.Is(err, ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
}

func TestWithTimeoutFastPathUnaffected(t *testing.T) {
	c, ctrl := New[any]()
	out := c.WithTimeout(time.Minute)
	_ = ctrl.Update(1, LevelWeak)
	_ = ctrl.Close(2, LevelStrong)
	v, err := out.Final(context.Background())
	if err != nil || v.Value != 2 || v.Level != LevelStrong {
		t.Errorf("v = %+v, err = %v", v, err)
	}
	if len(out.Views()) != 2 {
		t.Errorf("views = %+v", out.Views())
	}
}

func TestWithTimeoutPropagatesError(t *testing.T) {
	c, ctrl := New[any]()
	out := c.WithTimeout(time.Minute)
	boom := errors.New("x")
	_ = ctrl.Fail(boom)
	if _, err := out.Final(context.Background()); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestCatchRecovers(t *testing.T) {
	c, ctrl := New[any]()
	out := c.Catch(func(err error) (interface{}, error) {
		return "fallback", nil
	})
	_ = ctrl.Fail(errors.New("storage down"))
	v, err := out.Final(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v.Value != "fallback" || v.Level != LevelCache {
		t.Errorf("recovered = %+v", v)
	}
}

func TestCatchRethrows(t *testing.T) {
	c, ctrl := New[any]()
	wrapped := errors.New("wrapped")
	out := c.Catch(func(err error) (interface{}, error) { return nil, wrapped })
	_ = ctrl.Fail(errors.New("original"))
	if _, err := out.Final(context.Background()); !errors.Is(err, wrapped) {
		t.Errorf("err = %v", err)
	}
}

func TestCatchPassthroughOnSuccess(t *testing.T) {
	c, ctrl := New[any]()
	called := false
	out := c.Catch(func(error) (interface{}, error) { called = true; return nil, nil })
	_ = ctrl.Update(1, LevelWeak)
	_ = ctrl.Close(2, LevelStrong)
	v, err := out.Final(context.Background())
	if err != nil || v.Value != 2 {
		t.Fatalf("v=%+v err=%v", v, err)
	}
	if called {
		t.Error("handler ran on success")
	}
	if len(out.Views()) != 2 {
		t.Errorf("views = %d", len(out.Views()))
	}
}

func TestFinallyRunsOnceEitherWay(t *testing.T) {
	for _, fail := range []bool{false, true} {
		c, ctrl := New[any]()
		var n int32
		c.Finally(func() { atomic.AddInt32(&n, 1) })
		_ = ctrl.Update(1, LevelWeak)
		if fail {
			_ = ctrl.Fail(errors.New("x"))
		} else {
			_ = ctrl.Close(2, LevelStrong)
		}
		if got := atomic.LoadInt32(&n); got != 1 {
			t.Errorf("fail=%v: Finally ran %d times", fail, got)
		}
	}
}

func TestFilterLevels(t *testing.T) {
	c, ctrl := New[any]()
	out := c.FilterLevels(LevelCausal)
	_ = ctrl.Update("cache", LevelCache)   // filtered
	_ = ctrl.Update("causal", LevelCausal) // passes
	_ = ctrl.Close("strong", LevelStrong)
	if _, err := out.Final(context.Background()); err != nil {
		t.Fatal(err)
	}
	views := out.Views()
	if len(views) != 2 || views[0].Value != "causal" || views[1].Value != "strong" {
		t.Errorf("views = %+v", views)
	}
}

func TestFilterLevelsAlwaysForwardsFinal(t *testing.T) {
	c, ctrl := New[any]()
	out := c.FilterLevels(LevelStrong)
	_ = ctrl.Close("weak-final", LevelWeak) // below min, but final
	v, err := out.Final(context.Background())
	if err != nil || v.Value != "weak-final" {
		t.Errorf("v=%+v err=%v", v, err)
	}
}

func TestRaceTakesFirstView(t *testing.T) {
	c1, ctrl1 := New[any]()
	c2, ctrl2 := New[any]()
	out := Race(c1, c2)
	_ = ctrl2.Update("fast-prelim", LevelCache)
	v, err := out.Final(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v.Value != "fast-prelim" {
		t.Errorf("winner = %v", v.Value)
	}
	_ = ctrl1.Close("slow", LevelStrong) // ignored
}

func TestRaceAllFail(t *testing.T) {
	c1, ctrl1 := New[any]()
	c2, ctrl2 := New[any]()
	out := Race(c1, c2)
	_ = ctrl1.Fail(errors.New("e1"))
	_ = ctrl2.Fail(errors.New("e2"))
	if _, err := out.Final(context.Background()); err == nil {
		t.Error("expected failure when all children fail")
	}
}

func TestRaceEmpty(t *testing.T) {
	if _, err := Race[any]().Final(context.Background()); !errors.Is(err, ErrNoView) {
		t.Errorf("err = %v", err)
	}
}
