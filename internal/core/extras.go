package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// This file holds the features Correctables inherit from modern Promises
// that the paper mentions but elides for space (§3.2: "error handling,
// timeouts, or other features inherited from modern Promises, such as
// aggregation or monadic-style chaining").

// ErrTimeout closes a Correctable abandoned by WithTimeout.
var ErrTimeout = errors.New("correctable: timed out")

// WithTimeout returns a Correctable mirroring c, except that if c has not
// closed within d it resolves early: with the latest view received so far
// (degraded but usable — the "tight latency SLA" pattern of §2.2), or with
// ErrTimeout if no view arrived at all. Late views from c are ignored.
// The deadline runs on the Correctable's scheduler time axis: host time by
// default, model time under a simulation scheduler.
func (c *Correctable[T]) WithTimeout(d time.Duration) *Correctable[T] {
	out, ctrl := c.derive(c.Levels())
	c.scheduler().After(d, func() {
		// No-op if the source already closed the output (ErrClosed).
		if v, ok := c.Latest(); ok {
			_ = ctrl.Close(v.Value, v.Level)
		} else {
			_ = ctrl.Fail(fmt.Errorf("%w after %v", ErrTimeout, d))
		}
	})
	c.SetCallbacks(Callbacks[T]{
		OnUpdate: func(v View[T]) {
			if v.Final {
				_ = ctrl.Close(v.Value, v.Level)
			} else {
				_ = ctrl.Update(v.Value, v.Level)
			}
		},
		OnError: func(err error) {
			_ = ctrl.Fail(err)
		},
	})
	return out
}

// Catch returns a Correctable mirroring c, except that if c fails, handler
// is consulted: a non-error return closes the result with the recovery
// value (at LevelNone-adjacent weakest level LevelCache, since a recovered
// value carries no storage guarantee); returning an error fails the result
// with it. This is the Promise `catch` combinator.
func (c *Correctable[T]) Catch(handler func(error) (T, error)) *Correctable[T] {
	out, ctrl := c.derive(c.Levels())
	c.SetCallbacks(Callbacks[T]{
		OnUpdate: func(v View[T]) {
			if v.Final {
				_ = ctrl.Close(v.Value, v.Level)
			} else {
				_ = ctrl.Update(v.Value, v.Level)
			}
		},
		OnError: func(err error) {
			val, herr := handler(err)
			if herr != nil {
				_ = ctrl.Fail(herr)
				return
			}
			_ = ctrl.Close(val, LevelCache)
		},
	})
	return out
}

// Finally invokes f exactly once when c leaves the Updating state, whether
// it closed with a view or an error, and returns c for chaining.
func (c *Correctable[T]) Finally(f func()) *Correctable[T] {
	return c.SetCallbacks(Callbacks[T]{
		OnFinal: func(View[T]) { f() },
		OnError: func(error) { f() },
	})
}

// FilterLevels returns a Correctable that forwards only views at or above
// min (the final view is always forwarded, whatever its level, so the
// result still closes). Applications use it to ignore a too-weak cache view
// while keeping the rest of the ICG stream.
func (c *Correctable[T]) FilterLevels(min Level) *Correctable[T] {
	out, ctrl := c.derive(c.Levels())
	c.SetCallbacks(Callbacks[T]{
		OnUpdate: func(v View[T]) {
			if v.Final {
				_ = ctrl.Close(v.Value, v.Level)
				return
			}
			if v.Level.AtLeast(min) {
				_ = ctrl.Update(v.Value, v.Level)
			}
		},
		OnError: func(err error) { _ = ctrl.Fail(err) },
	})
	return out
}

// Race returns a Correctable that closes with the first view (of any level)
// delivered by any child — the "quick approximate result is sometimes
// better than an overdue reply" pattern (§4.4). Children keep running; only
// their first view matters. If every child fails, Race fails with the
// last-observed error. Watchers run on the children's scheduler, so racing
// simulation-backed Correctables parks actors instead of bare goroutines.
func Race[T any](cs ...*Correctable[T]) *Correctable[T] {
	out, ctrl := NewScheduled[T](schedOf(cs), nil)
	if len(cs) == 0 {
		_ = ctrl.Fail(ErrNoView)
		return out
	}
	var mu sync.Mutex
	failures := 0
	for _, c := range cs {
		c := c
		out.scheduler().Go(func() {
			v, err := c.First(context.Background())
			if err != nil {
				mu.Lock()
				failures++
				allFailed := failures == len(cs)
				mu.Unlock()
				if allFailed {
					_ = ctrl.Fail(err) // no-op if a view won the race
				}
				return
			}
			_ = ctrl.Close(v.Value, v.Level)
		})
	}
	return out
}
