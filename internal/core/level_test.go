package core

import (
	"testing"
	"testing/quick"
)

func TestLevelOrdering(t *testing.T) {
	ordered := []Level{LevelNone, LevelCache, LevelWeak, LevelCausal, LevelStrong}
	for i := 1; i < len(ordered); i++ {
		if !ordered[i].StrongerThan(ordered[i-1]) {
			t.Errorf("%v should be stronger than %v", ordered[i], ordered[i-1])
		}
		if !ordered[i].AtLeast(ordered[i-1]) || !ordered[i].AtLeast(ordered[i]) {
			t.Errorf("AtLeast violated at %v", ordered[i])
		}
	}
}

func TestLevelString(t *testing.T) {
	cases := map[Level]string{
		LevelNone:   "none",
		LevelCache:  "cache",
		LevelWeak:   "weak",
		LevelCausal: "causal",
		LevelStrong: "strong",
		Level(42):   "level(42)",
	}
	for l, want := range cases {
		if got := l.String(); got != want {
			t.Errorf("Level(%d).String() = %q, want %q", l, got, want)
		}
	}
}

func TestLevelsHelpers(t *testing.T) {
	ls := Levels{LevelStrong, LevelWeak}
	if !ls.Contains(LevelWeak) || ls.Contains(LevelCache) {
		t.Error("Contains misbehaves")
	}
	if ls.Strongest() != LevelStrong {
		t.Errorf("Strongest = %v", ls.Strongest())
	}
	if ls.Weakest() != LevelWeak {
		t.Errorf("Weakest = %v", ls.Weakest())
	}
	if (Levels{}).Strongest() != LevelNone || (Levels{}).Weakest() != LevelNone {
		t.Error("empty Levels should report LevelNone")
	}
}

func TestLevelsSorted(t *testing.T) {
	in := Levels{LevelStrong, LevelWeak, LevelStrong, LevelNone, LevelCache}
	got := in.Sorted()
	want := Levels{LevelCache, LevelWeak, LevelStrong}
	if len(got) != len(want) {
		t.Fatalf("Sorted = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sorted = %v, want %v", got, want)
		}
	}
}

// Property: Sorted output is strictly increasing, duplicate-free, None-free,
// and contains exactly the distinct non-None input levels.
func TestPropertyLevelsSorted(t *testing.T) {
	f := func(raw []uint8) bool {
		in := make(Levels, len(raw))
		for i, r := range raw {
			in[i] = Level(int(r) % 6) // includes None and one out-of-range
		}
		out := in.Sorted()
		seen := map[Level]bool{}
		for i, l := range out {
			if l == LevelNone {
				return false
			}
			if seen[l] {
				return false
			}
			seen[l] = true
			if i > 0 && out[i-1] >= l {
				return false
			}
			if !in.Contains(l) {
				return false
			}
		}
		for _, l := range in {
			if l != LevelNone && !seen[l] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
