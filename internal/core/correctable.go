package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"time"
)

// State is the lifecycle state of a Correctable (§3.1, Figure 3).
type State uint8

const (
	// StateUpdating: the operation is in progress; preliminary views may
	// still arrive.
	StateUpdating State = iota
	// StateFinal: the Correctable closed with a final (strongest requested)
	// view.
	StateFinal
	// StateError: the Correctable closed with an error.
	StateError
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case StateUpdating:
		return "updating"
	case StateFinal:
		return "final"
	case StateError:
		return "error"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// View is one incremental view of an operation's result: a value together
// with the consistency level it satisfies. The value is typed: a
// Correctable[T] delivers View[T], so applications never assert types on
// the hot path.
type View[T any] struct {
	// Value is the operation result as provided by the binding.
	Value T
	// Level is the consistency guarantee this view satisfies.
	Level Level
	// Index is the 0-based position of this view in the delivery sequence.
	Index int
	// Final reports whether this is the closing view.
	Final bool
	// At is the delivery instant on the Correctable's scheduler time axis
	// (set by the library): model time under a simulation scheduler —
	// deterministic, so recorded histories replay byte-identically — and
	// monotonic process time under the default scheduler.
	At time.Duration
}

// Callbacks bundles the three per-state callbacks of a Correctable
// (Figure 3). Any field may be nil. OnUpdate fires for every view, including
// the final one (the final view is both an update and the closing view, so
// code written against OnUpdate alone observes the full sequence, as in the
// paper's Listing 5/6). OnFinal fires exactly once, after the last OnUpdate.
// OnError fires exactly once if the Correctable closes with an error.
//
// Callbacks for one Correctable are delivered sequentially, in view order;
// a callback may attach further callbacks or even deliver views through a
// Controller, but it must not block — neither waiting on the same
// Correctable nor through the simulation scheduler at all. Bindings may
// deliver non-final views from clock callback-timer context (see
// netsim.Clock: preliminary flushes ride on RunAfter), where any blocking
// scheduler call panics. Run cheap reactions inline; hand blocking
// follow-up work (issuing another operation synchronously, charging
// service time) to a new actor via the clock's Go.
type Callbacks[T any] struct {
	OnUpdate func(View[T])
	OnFinal  func(View[T])
	OnError  func(error)
}

// ErrClosed is returned by Controller methods invoked after the Correctable
// has already closed.
var ErrClosed = errors.New("correctable: already closed")

// ErrNoView is returned when waiting on a Correctable that closed with no
// view at the requested level.
var ErrNoView = errors.New("correctable: closed without a view at the requested level")

// cbEntry tracks how far delivery has progressed for one attached callback
// bundle, so that late subscribers replay history without duplicates.
type cbEntry[T any] struct {
	cbs          Callbacks[T]
	next         int // index of next view to deliver
	terminalSent bool
}

// inlineViews is the number of views a Correctable stores without heap
// allocation. Two covers the paper's common case (one preliminary + one
// final view per ICG invocation), which keeps the typed invoke path free of
// per-view allocations.
const inlineViews = 2

// Correctable represents the progressively improving result of an operation
// on a replicated object, generic over the operation's value type T. It is
// safe for concurrent use.
type Correctable[T any] struct {
	sched Scheduler // fixed at creation; nil means DefaultScheduler

	mu          sync.Mutex
	state       State
	views       []View[T]
	viewBuf     [inlineViews]View[T] // inline storage for the common ≤2-view case
	err         error
	entries     []*cbEntry[T]
	dispatching bool
	done        chan struct{} // lazily created by Done()
	waiters     []Event       // fired on every transition
	levelSet    Levels        // advisory: levels this correctable will deliver
}

// scheduler returns the Correctable's scheduler, defaulting when unset.
func (c *Correctable[T]) scheduler() Scheduler {
	if c.sched == nil {
		return DefaultScheduler
	}
	return c.sched
}

// Controller is the producer-side handle of a Correctable. The library hands
// the Correctable to the application and keeps the Controller for the
// binding; this split keeps applications from closing results themselves.
// Controller is a small value (copy it freely); the zero Controller is
// invalid.
type Controller[T any] struct {
	c *Correctable[T]
}

// New creates a Correctable in the Updating state together with its
// Controller.
func New[T any]() (*Correctable[T], Controller[T]) {
	c := &Correctable[T]{}
	c.views = c.viewBuf[:0]
	return c, Controller[T]{c: c}
}

// NewWithLevels is New with an advisory set of levels the producer intends
// to deliver (used by Invoke to record the requested level subset). The set
// is normalized (sorted, deduplicated) before being stored.
func NewWithLevels[T any](levels Levels) (*Correctable[T], Controller[T]) {
	return NewScheduled[T](nil, levels.Sorted())
}

// NewScheduled is New with an explicit Scheduler governing how this
// Correctable spawns goroutines (Speculate) and how its consumers block
// (Final, WaitLevel), plus an advisory level set. Bindings over simulated
// substrates pass their clock's scheduler here; sched == nil means
// DefaultScheduler. Derived Correctables (Then, Speculate, combinators)
// inherit the scheduler.
//
// NewScheduled takes ownership of levels and stores it without copying or
// re-sorting; callers must pass an already-normalized (weakest-first,
// deduplicated) set — the client library caches these per construction, so
// the invoke hot path performs no per-call level allocation.
func NewScheduled[T any](sched Scheduler, levels Levels) (*Correctable[T], Controller[T]) {
	c := &Correctable[T]{sched: sched, levelSet: levels}
	c.views = c.viewBuf[:0]
	return c, Controller[T]{c: c}
}

// derive creates a child Correctable sharing c's scheduler.
func (c *Correctable[T]) derive(levels Levels) (*Correctable[T], Controller[T]) {
	return NewScheduled[T](c.sched, levels)
}

// deriveAs creates a child Correctable of a different value type sharing c's
// scheduler (for Speculate/Map chains that change the type).
func deriveAs[U, T any](c *Correctable[T], levels Levels) (*Correctable[U], Controller[U]) {
	return NewScheduled[U](c.sched, levels)
}

// Levels returns the advisory set of levels this Correctable was created
// with (nil if the producer did not declare one — no allocation in that
// common case).
func (c *Correctable[T]) Levels() Levels {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.levelSet) == 0 {
		return nil
	}
	out := make(Levels, len(c.levelSet))
	copy(out, c.levelSet)
	return out
}

// Update delivers a preliminary view (Updating -> Updating). It returns
// ErrClosed if the Correctable has already closed.
func (ctrl Controller[T]) Update(value T, level Level) error {
	return ctrl.c.deliver(value, level, false, nil)
}

// Close delivers the final view and transitions to StateFinal. It returns
// ErrClosed if the Correctable has already closed.
func (ctrl Controller[T]) Close(value T, level Level) error {
	return ctrl.c.deliver(value, level, true, nil)
}

// Fail closes the Correctable with an error (StateError). It returns
// ErrClosed if the Correctable has already closed.
func (ctrl Controller[T]) Fail(err error) error {
	if err == nil {
		err = errors.New("correctable: Fail called with nil error")
	}
	var zero T
	return ctrl.c.deliver(zero, LevelNone, false, err)
}

// Correctable returns the consumer-side handle (convenience for tests and
// combinators that create both ends).
func (ctrl Controller[T]) Correctable() *Correctable[T] { return ctrl.c }

// deliver is the single mutation point: it appends a view or records the
// error, wakes waiters, runs the dispatch loop, and closes done on the
// terminal transition.
func (c *Correctable[T]) deliver(value T, level Level, final bool, failure error) error {
	c.mu.Lock()
	if c.state != StateUpdating {
		c.mu.Unlock()
		return ErrClosed
	}
	if failure != nil {
		c.state = StateError
		c.err = failure
	} else {
		c.views = append(c.views, View[T]{
			Value: value, Level: level, Index: len(c.views), Final: final, At: c.scheduler().Now(),
		})
		if final {
			c.state = StateFinal
		}
	}
	terminal := c.state != StateUpdating
	done := c.done
	waiters := c.waiters
	c.waiters = nil
	c.dispatch()
	c.mu.Unlock()

	for _, w := range waiters {
		w.Fire()
	}
	if terminal && done != nil {
		close(done)
	}
	return nil
}

// dispatch drains pending notifications to all attached callbacks. It must
// be called with c.mu held and returns with c.mu held. Callbacks run with
// the lock released. Re-entrant calls (from inside a callback) return
// immediately; the outer dispatch loop picks up whatever they enqueued.
func (c *Correctable[T]) dispatch() {
	if c.dispatching {
		return
	}
	c.dispatching = true
	for {
		progressed := false
		for i := 0; i < len(c.entries); i++ {
			e := c.entries[i]
			for e.next < len(c.views) {
				v := c.views[e.next]
				e.next++
				cb := e.cbs.OnUpdate
				if cb != nil {
					c.mu.Unlock()
					cb(v)
					c.mu.Lock()
				}
				progressed = true
			}
			if !e.terminalSent && c.state != StateUpdating && e.next == len(c.views) {
				e.terminalSent = true
				progressed = true
				switch c.state {
				case StateFinal:
					if cb := e.cbs.OnFinal; cb != nil && len(c.views) > 0 {
						v := c.views[len(c.views)-1]
						c.mu.Unlock()
						cb(v)
						c.mu.Lock()
					}
				case StateError:
					if cb := e.cbs.OnError; cb != nil {
						err := c.err
						c.mu.Unlock()
						cb(err)
						c.mu.Lock()
					}
				}
			}
		}
		if !progressed {
			break
		}
	}
	c.dispatching = false
}

// SetCallbacks attaches a callback bundle (§3.1). If views were already
// delivered, they are replayed to the new callbacks (in order, without
// duplicates) before SetCallbacks returns, so late subscribers observe the
// complete history exactly as early ones did. It returns c to allow
// chaining, mirroring the paper's fluent style:
//
//	invoke(op).Speculate(f).SetCallbacks(...)
func (c *Correctable[T]) SetCallbacks(cbs Callbacks[T]) *Correctable[T] {
	c.mu.Lock()
	c.entries = append(c.entries, &cbEntry[T]{cbs: cbs})
	c.dispatch()
	c.mu.Unlock()
	return c
}

// OnUpdate attaches an update-only callback.
func (c *Correctable[T]) OnUpdate(f func(View[T])) *Correctable[T] {
	return c.SetCallbacks(Callbacks[T]{OnUpdate: f})
}

// OnFinal attaches a final-only callback.
func (c *Correctable[T]) OnFinal(f func(View[T])) *Correctable[T] {
	return c.SetCallbacks(Callbacks[T]{OnFinal: f})
}

// OnError attaches an error-only callback.
func (c *Correctable[T]) OnError(f func(error)) *Correctable[T] {
	return c.SetCallbacks(Callbacks[T]{OnError: f})
}

// State returns the current state.
func (c *Correctable[T]) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// Err returns the closing error, if any.
func (c *Correctable[T]) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Views returns a copy of all views delivered so far, in order.
func (c *Correctable[T]) Views() []View[T] {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]View[T](nil), c.views...)
}

// Latest returns the most recent view, if any.
func (c *Correctable[T]) Latest() (View[T], bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.views) == 0 {
		var zero View[T]
		return zero, false
	}
	return c.views[len(c.views)-1], true
}

// closedChan is a shared, already-closed channel returned by Done for
// Correctables that closed before anyone asked.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// Done returns a channel closed when the Correctable leaves the Updating
// state. The channel is created lazily so that invocations that never block
// on it pay no allocation.
func (c *Correctable[T]) Done() <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done == nil {
		if c.state != StateUpdating {
			return closedChan
		}
		c.done = make(chan struct{})
	}
	return c.done
}

// Final blocks until the Correctable closes and returns the final view. If
// the Correctable closed with an error, or ctx expires first, that error is
// returned. Cancellable contexts are honored only under the default
// scheduler; a simulation scheduler cannot select on host-time
// cancellation (simulated operations always terminate instead).
func (c *Correctable[T]) Final(ctx context.Context) (View[T], error) {
	var zero View[T]
	if ctxDone := ctxDoneChan(ctx); ctxDone != nil && c.sched == nil {
		select {
		case <-c.Done():
		case <-ctxDone:
			return zero, ctx.Err()
		}
	} else {
		c.awaitTerminal()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state == StateError {
		return zero, c.err
	}
	if len(c.views) == 0 {
		return zero, ErrNoView
	}
	return c.views[len(c.views)-1], nil
}

// awaitTerminal blocks through scheduler events until the Correctable
// leaves the Updating state.
func (c *Correctable[T]) awaitTerminal() {
	for {
		c.mu.Lock()
		if c.state != StateUpdating {
			c.mu.Unlock()
			return
		}
		w := c.scheduler().NewEvent()
		c.waiters = append(c.waiters, w)
		c.mu.Unlock()
		w.Wait()
	}
}

// WaitLevel blocks until a view with level >= min has been delivered and
// returns the first such view. If the Correctable closes without one, it
// returns ErrNoView (or the closing error). Views already scanned on a
// previous wakeup are not re-examined, so waiting costs O(new views), and a
// wait that is already satisfied performs no allocation. Context
// cancellation is honored as in Final.
func (c *Correctable[T]) WaitLevel(ctx context.Context, min Level) (View[T], error) {
	var zero View[T]
	ctxDone := ctxDoneChan(ctx)
	scanned := 0
	for {
		c.mu.Lock()
		for ; scanned < len(c.views); scanned++ {
			if v := c.views[scanned]; v.Level.AtLeast(min) {
				c.mu.Unlock()
				return v, nil
			}
		}
		if c.state == StateError {
			err := c.err
			c.mu.Unlock()
			return zero, err
		}
		if c.state == StateFinal {
			c.mu.Unlock()
			return zero, ErrNoView
		}
		w := c.scheduler().NewEvent()
		c.waiters = append(c.waiters, w)
		c.mu.Unlock()
		if ce, ok := w.(*chanEvent); ok && ctxDone != nil {
			select {
			case <-ce.ch:
			case <-ctxDone:
				return zero, ctx.Err()
			}
		} else {
			w.Wait()
		}
	}
}

// ctxDoneChan returns ctx's cancellation channel, or nil for nil /
// non-cancellable contexts.
func ctxDoneChan(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// First blocks until any view has been delivered and returns it. This is the
// "settle for the preliminary" pattern (§2.2): applications with tight
// latency SLAs can take the first view and abandon the rest.
func (c *Correctable[T]) First(ctx context.Context) (View[T], error) {
	return c.WaitLevel(ctx, LevelNone+1)
}

// Equaler lets application values customize the divergence check used by
// Speculate and by confirmation detection. If a view value implements
// Equaler[T], it is consulted; otherwise ValuesEqual falls back to
// bytes.Equal for []byte and reflect.DeepEqual for everything else.
//
// Legacy implementations written against the boxed API
// (EqualValue(other interface{}) bool) satisfy Equaler[any] and keep
// working for Correctable[any] values.
type Equaler[T any] interface {
	EqualValue(other T) bool
}

// ValuesEqual reports whether two view values are equal for the purpose of
// confirmation / misspeculation detection. Either operand's Equaler[T] is
// consulted first; []byte values then compare by content without
// reflection; everything else falls back to reflect.DeepEqual.
func ValuesEqual[T any](a, b T) bool {
	if e, ok := any(a).(Equaler[T]); ok {
		return e.EqualValue(b)
	}
	if e, ok := any(b).(Equaler[T]); ok {
		return e.EqualValue(a)
	}
	if av, ok := any(a).([]byte); ok {
		if bv, ok := any(b).([]byte); ok {
			return bytes.Equal(av, bv)
		}
		return false // only possible for T=any with mismatched dynamic types
	}
	return reflect.DeepEqual(a, b)
}
