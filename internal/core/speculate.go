package core

import "sync"

// SpecFunc is a speculation function (§4.2, Listing 3). It receives a view
// of the source value type In and performs — possibly expensive, possibly
// side-effecting — work based on it, returning a result of type Out. It
// runs on its own goroutine.
type SpecFunc[In, Out any] func(View[In]) (Out, error)

// AbortFunc undoes the side effects of a superseded speculation. It receives
// the view the speculation was based on and the result it produced (the zero
// Out if the speculation function returned an error). It is called at most
// once per superseded speculation, after that speculation's SpecFunc has
// returned and before the replacement speculation runs.
type AbortFunc[In, Out any] func(input View[In], result Out)

// specExec tracks one execution of the speculation function.
type specExec[In, Out any] struct {
	input View[In]
	done  Event

	// result and err are written by the executing goroutine before done is
	// fired.
	result Out
	err    error

	// The fields below are guarded by speculator.mu.
	completed   bool  // finished() has run and published (or skipped)
	closeOnDone bool  // confirmation arrived: close the output on completion
	closeLevel  Level // level of the confirming final view
}

// Speculate captures the speculation pattern of the paper (Listing 3): it
// applies spec to every new view delivered by c whose value differs from the
// previous one, and returns a new Correctable that closes with the return
// value of spec. This method keeps the value type; use the package-level
// Speculate to map to a different result type.
func (c *Correctable[T]) Speculate(spec SpecFunc[T, T], abort AbortFunc[T, T]) *Correctable[T] {
	return Speculate(c, spec, abort)
}

// Speculate is the type-changing form of Correctable.Speculate: spec maps
// views of In to a result of type Out, and the returned Correctable[Out]
// closes with spec's output.
//
// If the final view matches the last speculated-on view (the common case),
// the returned Correctable closes as soon as both the final view has arrived
// and that speculation has finished — the speculation was correct and its
// latency is hidden. Otherwise spec is automatically re-executed with the
// correct (final) input, abort (if non-nil) is called first to undo the
// preceding speculation's side effects, and the returned Correctable closes
// only after the re-execution completes.
//
// Results of speculations on preliminary views are additionally delivered as
// preliminary views of the returned Correctable (at the input view's level),
// so speculation chains compose with OnUpdate-style progressive display.
//
// Divergence between views is judged with ValuesEqual (Equaler[In] when the
// value type implements it).
//
// If c closes with an error, the returned Correctable fails with the same
// error (after any outstanding speculation is aborted).
func Speculate[In, Out any](c *Correctable[In], spec SpecFunc[In, Out], abort AbortFunc[In, Out]) *Correctable[Out] {
	out, ctrl := deriveAs[Out](c, c.Levels())
	s := &speculator[In, Out]{spec: spec, abort: abort, ctrl: ctrl, sched: c.scheduler()}
	c.SetCallbacks(Callbacks[In]{
		OnUpdate: s.onUpdate,
		OnError:  s.onError,
	})
	return out
}

type speculator[In, Out any] struct {
	mu     sync.Mutex
	spec   SpecFunc[In, Out]
	abort  AbortFunc[In, Out]
	ctrl   Controller[Out]
	sched  Scheduler
	latest *specExec[In, Out]
}

// startLocked launches a speculation for v, superseding (and, once it
// finishes, aborting) the previous one. Caller must hold s.mu.
func (s *speculator[In, Out]) startLocked(v View[In]) {
	prev := s.latest
	e := &specExec[In, Out]{input: v, done: s.sched.NewEvent()}
	s.latest = e
	s.sched.Go(func() {
		if prev != nil {
			s.waitAbort(prev)
		}
		e.result, e.err = s.spec(v)
		e.done.Fire()
		s.finished(e)
	})
}

// waitAbort waits for a superseded execution to finish and undoes its side
// effects.
func (s *speculator[In, Out]) waitAbort(e *specExec[In, Out]) {
	e.done.Wait()
	if s.abort != nil {
		var res Out
		if e.err == nil {
			res = e.result
		}
		s.abort(e.input, res)
	}
}

// finished publishes the outcome of a completed execution.
func (s *speculator[In, Out]) finished(e *specExec[In, Out]) {
	s.mu.Lock()
	e.completed = true
	isLatest := s.latest == e
	closeOnDone := e.closeOnDone
	closeLevel := e.closeLevel
	final := e.input.Final
	s.mu.Unlock()
	if !isLatest {
		return // superseded; the superseding goroutine aborts it
	}
	if final || closeOnDone {
		level := e.input.Level
		if closeOnDone {
			level = closeLevel
		}
		if e.err != nil {
			_ = s.ctrl.Fail(e.err)
		} else {
			_ = s.ctrl.Close(e.result, level)
		}
		return
	}
	if e.err == nil {
		// Preliminary speculation result; best effort (the output may have
		// already closed if the source errored concurrently).
		_ = s.ctrl.Update(e.result, e.input.Level)
	}
}

func (s *speculator[In, Out]) onUpdate(v View[In]) {
	s.mu.Lock()
	prev := s.latest
	sameAsPrev := prev != nil && ValuesEqual(prev.input.Value, v.Value)
	if !v.Final {
		// Speculate only on views whose value differs from the previous one.
		if !sameAsPrev {
			s.startLocked(v)
		}
		s.mu.Unlock()
		return
	}
	if sameAsPrev {
		// Confirmation: the final view matches the speculated-on input.
		if prev.completed {
			s.mu.Unlock()
			if prev.err != nil {
				_ = s.ctrl.Fail(prev.err)
			} else {
				_ = s.ctrl.Close(prev.result, v.Level)
			}
			return
		}
		prev.closeOnDone = true
		prev.closeLevel = v.Level
		s.mu.Unlock()
		return
	}
	// Misspeculation, or no preliminary arrived at all: (re-)execute on the
	// final view; startLocked's goroutine aborts the superseded execution
	// before the re-execution runs.
	s.startLocked(v)
	s.mu.Unlock()
}

func (s *speculator[In, Out]) onError(err error) {
	s.mu.Lock()
	prev := s.latest
	s.latest = nil
	s.mu.Unlock()
	if prev != nil {
		s.sched.Go(func() { s.waitAbort(prev) })
	}
	_ = s.ctrl.Fail(err)
}
