// Package core implements the Correctable abstraction: a generalization of
// Promises that represents not one but several future values, corresponding
// to incremental views of the result of an operation on a replicated object.
//
// A Correctable starts in the Updating state. Each preliminary view triggers
// a same-state transition (Updating -> Updating) and the OnUpdate callbacks.
// When the final view (or an error) becomes available the Correctable closes,
// transitioning to Final (or Error) exactly once.
//
// This package is the paper's "core library" (§3): creation, state
// transitions, callback delivery, speculation, and the combinators inherited
// from modern Promises. Storage-specific protocol code lives in bindings
// (package binding and the per-store packages).
package core

import "fmt"

// Level identifies a consistency level attached to a view. Bindings advertise
// an ordered list of the levels they support, from weakest to strongest
// (§5.1). The numeric ordering below is the library-wide ranking used when an
// application asks to wait for "at least" a given level.
type Level int

// The consistency levels used by the bindings in this repository. A binding
// may support any ordered subset. LevelNone is the zero value and never
// appears in a delivered view.
const (
	LevelNone Level = iota
	// LevelCache: value served from a client-local cache. May be arbitrarily
	// stale; latency is essentially zero.
	LevelCache
	// LevelWeak: eventually consistent value, e.g. a single-replica read in a
	// quorum system (R=1) or a local simulation of an operation on one
	// replica's state.
	LevelWeak
	// LevelCausal: causally consistent value.
	LevelCausal
	// LevelStrong: strongly consistent (linearizable / quorum-reconciled /
	// totally ordered) value.
	LevelStrong
)

// String returns the human-readable name of the level.
func (l Level) String() string {
	switch l {
	case LevelNone:
		return "none"
	case LevelCache:
		return "cache"
	case LevelWeak:
		return "weak"
	case LevelCausal:
		return "causal"
	case LevelStrong:
		return "strong"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// StrongerThan reports whether l is strictly stronger than other.
func (l Level) StrongerThan(other Level) bool { return l > other }

// AtLeast reports whether l is at least as strong as other.
func (l Level) AtLeast(other Level) bool { return l >= other }

// Levels is an ordered set of consistency levels, weakest first.
type Levels []Level

// Contains reports whether ls contains l.
func (ls Levels) Contains(l Level) bool {
	for _, x := range ls {
		if x == l {
			return true
		}
	}
	return false
}

// Strongest returns the strongest level in ls, or LevelNone if empty.
func (ls Levels) Strongest() Level {
	max := LevelNone
	for _, x := range ls {
		if x > max {
			max = x
		}
	}
	return max
}

// Weakest returns the weakest level in ls (ignoring LevelNone entries), or
// LevelNone if empty.
func (ls Levels) Weakest() Level {
	min := LevelNone
	for _, x := range ls {
		if x == LevelNone {
			continue
		}
		if min == LevelNone || x < min {
			min = x
		}
	}
	return min
}

// Sorted returns a copy of ls ordered weakest to strongest with duplicates
// and LevelNone entries removed. Bindings use this to normalize the level
// subset passed to Invoke.
func (ls Levels) Sorted() Levels {
	seen := make(map[Level]bool, len(ls))
	out := make(Levels, 0, len(ls))
	for _, x := range ls {
		if x == LevelNone || seen[x] {
			continue
		}
		seen[x] = true
		out = append(out, x)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
