package core

import (
	"context"
	"testing"
)

// TestTypedViewsNoBoxing: a Correctable[[]byte] stores and returns slices
// directly; the first two views live in the inline buffer and survive a
// growth past it.
func TestTypedViewsInlineAndGrowth(t *testing.T) {
	c, ctrl := New[[]byte]()
	_ = ctrl.Update([]byte("a"), LevelCache)
	_ = ctrl.Update([]byte("b"), LevelWeak)
	_ = ctrl.Update([]byte("c"), LevelCausal)
	_ = ctrl.Close([]byte("d"), LevelStrong)
	views := c.Views()
	if len(views) != 4 {
		t.Fatalf("views = %d, want 4", len(views))
	}
	for i, want := range []string{"a", "b", "c", "d"} {
		if string(views[i].Value) != want || views[i].Index != i {
			t.Errorf("view %d = %+v, want %q", i, views[i], want)
		}
	}
}

// TestTypedMapChangesType: Map turns a Correctable[int] into a
// Correctable[string].
func TestTypedMapChangesType(t *testing.T) {
	c, ctrl := New[int]()
	out := Map(c, func(v View[int]) (string, error) {
		return string(rune('a' + v.Value)), nil
	})
	_ = ctrl.Update(0, LevelWeak)
	_ = ctrl.Close(1, LevelStrong)
	v, err := out.Final(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v.Value != "b" {
		t.Errorf("mapped final = %q, want b", v.Value)
	}
}

// identityEq judges equality on ID only, via the typed Equaler[T].
type identityEq struct {
	ID   string
	Hits int
}

func (e identityEq) EqualValue(o identityEq) bool { return e.ID == o.ID }

// TestTypedSpeculateUsesEqualer: confirmation detection consults the typed
// Equaler, so a final view differing only in ignored fields confirms the
// preliminary speculation instead of re-executing.
func TestTypedSpeculateUsesEqualer(t *testing.T) {
	c, ctrl := New[identityEq]()
	runs := 0
	out := Speculate(c, func(v View[identityEq]) (int, error) {
		runs++
		return v.Value.Hits, nil
	}, nil)
	_ = ctrl.Update(identityEq{ID: "x", Hits: 1}, LevelWeak)
	_ = ctrl.Close(identityEq{ID: "x", Hits: 99}, LevelStrong)
	v, err := out.Final(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Errorf("spec ran %d times, want 1 (Equaler-confirmed)", runs)
	}
	if v.Value != 1 {
		t.Errorf("result = %d, want the speculated 1", v.Value)
	}
}

// TestTypedValuesEqualDispatch: the three ValuesEqual strategies.
func TestTypedValuesEqualDispatch(t *testing.T) {
	if !ValuesEqual(identityEq{ID: "a", Hits: 1}, identityEq{ID: "a", Hits: 2}) {
		t.Error("Equaler[T] path broken")
	}
	if !ValuesEqual([]byte("z"), []byte("z")) || ValuesEqual([]byte("z"), []byte("y")) {
		t.Error("[]byte fast path broken")
	}
	type pair struct{ A, B int }
	if !ValuesEqual(pair{1, 2}, pair{1, 2}) || ValuesEqual(pair{1, 2}, pair{2, 1}) {
		t.Error("reflect fallback broken")
	}
}

// TestTypedDoneLazyAllocation: Done before and after closure behaves
// identically even though the channel is created lazily.
func TestTypedDoneLazyAllocation(t *testing.T) {
	// Done requested before closure.
	c1, ctrl1 := New[int]()
	ch := c1.Done()
	select {
	case <-ch:
		t.Fatal("done closed early")
	default:
	}
	_ = ctrl1.Close(1, LevelStrong)
	<-ch

	// Done requested only after closure: returns an already-closed channel.
	c2, ctrl2 := New[int]()
	_ = ctrl2.Close(1, LevelStrong)
	<-c2.Done()
}
