package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestSpeculateConfirmation(t *testing.T) {
	// Preliminary == final: speculation is confirmed, spec runs once, no
	// abort, result is the spec output at strong level.
	c, ctrl := New[any]()
	var specRuns, aborts int32
	out := c.Speculate(func(v View[any]) (interface{}, error) {
		atomic.AddInt32(&specRuns, 1)
		return fmt.Sprintf("spec(%v)", v.Value), nil
	}, func(View[any], interface{}) {
		atomic.AddInt32(&aborts, 1)
	})
	_ = ctrl.Update("x", LevelWeak)
	_ = ctrl.Close("x", LevelStrong)
	v, err := out.Final(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v.Value != "spec(x)" {
		t.Errorf("result = %v, want spec(x)", v.Value)
	}
	if v.Level != LevelStrong {
		t.Errorf("level = %v, want strong", v.Level)
	}
	if got := atomic.LoadInt32(&specRuns); got != 1 {
		t.Errorf("spec ran %d times, want 1", got)
	}
	if got := atomic.LoadInt32(&aborts); got != 0 {
		t.Errorf("abort ran %d times, want 0", got)
	}
}

func TestSpeculateMisspeculation(t *testing.T) {
	// Preliminary != final: spec re-executes on the final value, abort undoes
	// the preliminary speculation first.
	c, ctrl := New[any]()
	var mu sync.Mutex
	var trace []string
	out := c.Speculate(func(v View[any]) (interface{}, error) {
		mu.Lock()
		trace = append(trace, "spec:"+v.Value.(string))
		mu.Unlock()
		return "r:" + v.Value.(string), nil
	}, func(in View[any], res interface{}) {
		mu.Lock()
		trace = append(trace, fmt.Sprintf("abort:%v", res))
		mu.Unlock()
	})
	_ = ctrl.Update("stale", LevelWeak)
	_ = ctrl.Close("fresh", LevelStrong)
	v, err := out.Final(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v.Value != "r:fresh" {
		t.Errorf("result = %v, want r:fresh", v.Value)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{"spec:stale", "abort:r:stale", "spec:fresh"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestSpeculateHidesLatency(t *testing.T) {
	// The point of the paper: with a correct preliminary, the overall
	// latency is max(finalLatency, prelimLatency+specTime), not
	// finalLatency+specTime.
	const (
		prelimAt = 5 * time.Millisecond
		finalAt  = 60 * time.Millisecond
		specCost = 40 * time.Millisecond
	)
	c, ctrl := New[any]()
	start := time.Now()
	go func() {
		time.Sleep(prelimAt)
		_ = ctrl.Update("v", LevelWeak)
		time.Sleep(finalAt - prelimAt)
		_ = ctrl.Close("v", LevelStrong)
	}()
	out := c.Speculate(func(v View[any]) (interface{}, error) {
		time.Sleep(specCost)
		return "done", nil
	}, nil)
	if _, err := out.Final(context.Background()); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// Sequential execution would need finalAt+specCost = 100ms. Speculative
	// should finish around finalAt = 60ms. Use a generous margin for CI.
	if elapsed > finalAt+specCost-10*time.Millisecond {
		t.Errorf("speculation did not overlap: took %v, sequential would be %v", elapsed, finalAt+specCost)
	}
}

func TestSpeculateFinalOnly(t *testing.T) {
	// No preliminary at all: spec runs once, on the final view.
	c, ctrl := New[any]()
	var runs int32
	out := c.Speculate(func(v View[any]) (interface{}, error) {
		atomic.AddInt32(&runs, 1)
		return v.Value, nil
	}, nil)
	_ = ctrl.Close(7, LevelStrong)
	v, err := out.Final(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v.Value != 7 || atomic.LoadInt32(&runs) != 1 {
		t.Errorf("value=%v runs=%d", v.Value, runs)
	}
}

func TestSpeculateDuplicatePreliminarySkipped(t *testing.T) {
	// Per Listing 3: spec applies to every new view *if it differs from the
	// previous one*.
	c, ctrl := New[any]()
	var runs int32
	out := c.Speculate(func(v View[any]) (interface{}, error) {
		atomic.AddInt32(&runs, 1)
		return v.Value, nil
	}, nil)
	_ = ctrl.Update("same", LevelCache)
	_ = ctrl.Update("same", LevelWeak)
	_ = ctrl.Close("same", LevelStrong)
	if _, err := out.Final(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&runs); got != 1 {
		t.Errorf("spec ran %d times, want 1", got)
	}
}

func TestSpeculateSpecError(t *testing.T) {
	c, ctrl := New[any]()
	boom := errors.New("spec failed")
	out := c.Speculate(func(v View[any]) (interface{}, error) {
		return nil, boom
	}, nil)
	_ = ctrl.Close("x", LevelStrong)
	if _, err := out.Final(context.Background()); !errors.Is(err, boom) {
		t.Errorf("Final = %v, want %v", err, boom)
	}
}

func TestSpeculatePrelimSpecErrorThenFinalOK(t *testing.T) {
	// A failing speculation on the preliminary must not poison the result if
	// the final diverges and re-executes successfully.
	c, ctrl := New[any]()
	out := c.Speculate(func(v View[any]) (interface{}, error) {
		if v.Value == "bad" {
			return nil, errors.New("transient")
		}
		return "ok", nil
	}, nil)
	_ = ctrl.Update("bad", LevelWeak)
	_ = ctrl.Close("good", LevelStrong)
	v, err := out.Final(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v.Value != "ok" {
		t.Errorf("result = %v", v.Value)
	}
}

func TestSpeculateConfirmedPrelimSpecError(t *testing.T) {
	// Spec errors on the preliminary, and the final confirms the
	// preliminary: the error is the result (re-running would fail again on
	// identical input).
	c, ctrl := New[any]()
	boom := errors.New("boom")
	out := c.Speculate(func(v View[any]) (interface{}, error) {
		return nil, boom
	}, nil)
	_ = ctrl.Update("x", LevelWeak)
	time.Sleep(5 * time.Millisecond) // let spec finish
	_ = ctrl.Close("x", LevelStrong)
	if _, err := out.Final(context.Background()); !errors.Is(err, boom) {
		t.Errorf("Final err = %v, want %v", err, boom)
	}
}

func TestSpeculateSourceError(t *testing.T) {
	c, ctrl := New[any]()
	boom := errors.New("storage down")
	var aborted int32
	out := c.Speculate(func(v View[any]) (interface{}, error) {
		return v.Value, nil
	}, func(View[any], interface{}) { atomic.AddInt32(&aborted, 1) })
	_ = ctrl.Update("x", LevelWeak)
	time.Sleep(5 * time.Millisecond)
	_ = ctrl.Fail(boom)
	if _, err := out.Final(context.Background()); !errors.Is(err, boom) {
		t.Errorf("Final = %v, want %v", err, boom)
	}
	// The outstanding speculation gets aborted (asynchronously).
	deadline := time.Now().Add(time.Second)
	for atomic.LoadInt32(&aborted) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if atomic.LoadInt32(&aborted) != 1 {
		t.Error("outstanding speculation was not aborted after source error")
	}
}

func TestSpeculatePreliminaryResultDelivered(t *testing.T) {
	c, ctrl := New[any]()
	out := c.Speculate(func(v View[any]) (interface{}, error) {
		return "spec:" + v.Value.(string), nil
	}, nil)
	var mu sync.Mutex
	var prelim []interface{}
	out.OnUpdate(func(v View[any]) {
		mu.Lock()
		if !v.Final {
			prelim = append(prelim, v.Value)
		}
		mu.Unlock()
	})
	_ = ctrl.Update("a", LevelWeak)
	// Wait until the preliminary speculation result has propagated.
	deadline := time.Now().Add(time.Second)
	for {
		mu.Lock()
		n := len(prelim)
		mu.Unlock()
		if n > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	_ = ctrl.Close("a", LevelStrong)
	if _, err := out.Final(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(prelim) != 1 || prelim[0] != "spec:a" {
		t.Errorf("preliminary spec results = %v, want [spec:a]", prelim)
	}
}

func TestSpeculateMultiplePreliminaries(t *testing.T) {
	// Several distinct preliminary views: each superseded speculation is
	// aborted exactly once, in order, before its successor runs.
	c, ctrl := New[any]()
	var mu sync.Mutex
	var aborted []interface{}
	out := c.Speculate(func(v View[any]) (interface{}, error) {
		return v.Value, nil
	}, func(in View[any], res interface{}) {
		mu.Lock()
		aborted = append(aborted, in.Value)
		mu.Unlock()
	})
	_ = ctrl.Update(1, LevelCache)
	_ = ctrl.Update(2, LevelWeak)
	_ = ctrl.Update(3, LevelCausal)
	_ = ctrl.Close(3, LevelStrong)
	v, err := out.Final(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v.Value != 3 {
		t.Errorf("final = %v, want 3", v.Value)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(aborted) != 2 || aborted[0] != 1 || aborted[1] != 2 {
		t.Errorf("aborted = %v, want [1 2]", aborted)
	}
}

// Property: regardless of whether the preliminary matches the final, the
// Speculate result always equals spec(finalValue), and abort is called iff
// the preliminary diverged (when spec is pure).
func TestPropertySpeculateReflectsFinal(t *testing.T) {
	f := func(prelim, final uint8) bool {
		c, ctrl := New[any]()
		var aborts int32
		out := c.Speculate(func(v View[any]) (interface{}, error) {
			return int(v.Value.(uint8)) * 2, nil
		}, func(View[any], interface{}) { atomic.AddInt32(&aborts, 1) })
		_ = ctrl.Update(prelim, LevelWeak)
		_ = ctrl.Close(final, LevelStrong)
		v, err := out.Final(context.Background())
		if err != nil {
			return false
		}
		if v.Value.(int) != int(final)*2 {
			return false
		}
		wantAborts := int32(0)
		if prelim != final {
			wantAborts = 1
		}
		// Abort runs before the re-executed spec completes, which happens
		// before Final returns, so the count is settled here.
		return atomic.LoadInt32(&aborts) == wantAborts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
