package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestStatesAndTransitions(t *testing.T) {
	c, ctrl := New[any]()
	if got := c.State(); got != StateUpdating {
		t.Fatalf("new correctable state = %v, want updating", got)
	}
	if err := ctrl.Update("prelim", LevelWeak); err != nil {
		t.Fatalf("Update: %v", err)
	}
	if got := c.State(); got != StateUpdating {
		t.Fatalf("state after update = %v, want updating", got)
	}
	if err := ctrl.Close("final", LevelStrong); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := c.State(); got != StateFinal {
		t.Fatalf("state after close = %v, want final", got)
	}
	views := c.Views()
	if len(views) != 2 {
		t.Fatalf("len(views) = %d, want 2", len(views))
	}
	if views[0].Value != "prelim" || views[0].Level != LevelWeak || views[0].Final {
		t.Errorf("view[0] = %+v", views[0])
	}
	if views[1].Value != "final" || views[1].Level != LevelStrong || !views[1].Final {
		t.Errorf("view[1] = %+v", views[1])
	}
	if views[0].Index != 0 || views[1].Index != 1 {
		t.Errorf("view indices = %d, %d", views[0].Index, views[1].Index)
	}
}

func TestUpdateAfterCloseFails(t *testing.T) {
	_, ctrl := New[any]()
	if err := ctrl.Close(1, LevelStrong); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Update(2, LevelWeak); !errors.Is(err, ErrClosed) {
		t.Errorf("Update after Close = %v, want ErrClosed", err)
	}
	if err := ctrl.Close(3, LevelStrong); !errors.Is(err, ErrClosed) {
		t.Errorf("second Close = %v, want ErrClosed", err)
	}
	if err := ctrl.Fail(errors.New("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("Fail after Close = %v, want ErrClosed", err)
	}
}

func TestErrorState(t *testing.T) {
	c, ctrl := New[any]()
	boom := errors.New("boom")
	var got error
	c.OnError(func(err error) { got = err })
	if err := ctrl.Fail(boom); err != nil {
		t.Fatal(err)
	}
	if c.State() != StateError {
		t.Fatalf("state = %v, want error", c.State())
	}
	if !errors.Is(c.Err(), boom) || !errors.Is(got, boom) {
		t.Errorf("Err() = %v, callback err = %v", c.Err(), got)
	}
	if err := ctrl.Update(1, LevelWeak); !errors.Is(err, ErrClosed) {
		t.Errorf("Update after Fail = %v, want ErrClosed", err)
	}
}

func TestCallbackOrderAndCounts(t *testing.T) {
	c, ctrl := New[any]()
	var updates []interface{}
	var finals, errCount int
	c.SetCallbacks(Callbacks[any]{
		OnUpdate: func(v View[any]) { updates = append(updates, v.Value) },
		OnFinal:  func(v View[any]) { finals++ },
		OnError:  func(error) { errCount++ },
	})
	_ = ctrl.Update(1, LevelWeak)
	_ = ctrl.Update(2, LevelCausal)
	_ = ctrl.Close(3, LevelStrong)
	if len(updates) != 3 || updates[0] != 1 || updates[1] != 2 || updates[2] != 3 {
		t.Errorf("updates = %v, want [1 2 3]", updates)
	}
	if finals != 1 {
		t.Errorf("finals = %d, want 1", finals)
	}
	if errCount != 0 {
		t.Errorf("errCount = %d, want 0", errCount)
	}
}

func TestLateSubscriberReplaysHistory(t *testing.T) {
	c, ctrl := New[any]()
	_ = ctrl.Update("a", LevelWeak)
	_ = ctrl.Close("b", LevelStrong)

	var updates []interface{}
	var final interface{}
	c.SetCallbacks(Callbacks[any]{
		OnUpdate: func(v View[any]) { updates = append(updates, v.Value) },
		OnFinal:  func(v View[any]) { final = v.Value },
	})
	if len(updates) != 2 || updates[0] != "a" || updates[1] != "b" {
		t.Errorf("replayed updates = %v", updates)
	}
	if final != "b" {
		t.Errorf("replayed final = %v", final)
	}
}

func TestLateSubscriberAfterError(t *testing.T) {
	c, ctrl := New[any]()
	_ = ctrl.Update("a", LevelWeak)
	_ = ctrl.Fail(errors.New("late"))
	var updates, errs int
	c.SetCallbacks(Callbacks[any]{
		OnUpdate: func(View[any]) { updates++ },
		OnError:  func(error) { errs++ },
	})
	if updates != 1 || errs != 1 {
		t.Errorf("updates=%d errs=%d, want 1,1", updates, errs)
	}
}

func TestReentrantAttachFromCallback(t *testing.T) {
	c, ctrl := New[any]()
	var inner []interface{}
	c.OnUpdate(func(v View[any]) {
		if v.Index == 0 {
			// Attaching from inside a callback must not deadlock, and the
			// new callback must still see the complete history.
			c.OnUpdate(func(v2 View[any]) { inner = append(inner, v2.Value) })
		}
	})
	_ = ctrl.Update(10, LevelWeak)
	_ = ctrl.Close(20, LevelStrong)
	if len(inner) != 2 || inner[0] != 10 || inner[1] != 20 {
		t.Errorf("inner saw %v, want [10 20]", inner)
	}
}

func TestReentrantDeliverFromCallback(t *testing.T) {
	c, ctrl := New[any]()
	var seen []interface{}
	c.OnUpdate(func(v View[any]) {
		seen = append(seen, v.Value)
		if v.Index == 0 {
			_ = ctrl.Close("fin", LevelStrong)
		}
	})
	_ = ctrl.Update("pre", LevelWeak)
	if len(seen) != 2 || seen[0] != "pre" || seen[1] != "fin" {
		t.Errorf("seen = %v, want [pre fin]", seen)
	}
	if c.State() != StateFinal {
		t.Errorf("state = %v", c.State())
	}
}

func TestFinalBlocksUntilClose(t *testing.T) {
	c, ctrl := New[any]()
	go func() {
		_ = ctrl.Update(1, LevelWeak)
		_ = ctrl.Close(2, LevelStrong)
	}()
	v, err := c.Final(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v.Value != 2 || v.Level != LevelStrong || !v.Final {
		t.Errorf("final view = %+v", v)
	}
}

func TestFinalContextCancel(t *testing.T) {
	c, _ := New[any]()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := c.Final(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Final = %v, want deadline exceeded", err)
	}
}

func TestFinalOnError(t *testing.T) {
	c, ctrl := New[any]()
	boom := errors.New("boom")
	_ = ctrl.Fail(boom)
	if _, err := c.Final(context.Background()); !errors.Is(err, boom) {
		t.Errorf("Final = %v, want boom", err)
	}
}

func TestWaitLevel(t *testing.T) {
	c, ctrl := New[any]()
	go func() {
		_ = ctrl.Update("w", LevelWeak)
		time.Sleep(time.Millisecond)
		_ = ctrl.Close("s", LevelStrong)
	}()
	v, err := c.WaitLevel(context.Background(), LevelStrong)
	if err != nil {
		t.Fatal(err)
	}
	if v.Value != "s" {
		t.Errorf("WaitLevel(strong) = %v", v.Value)
	}
	// Already satisfied level returns immediately.
	v, err = c.WaitLevel(context.Background(), LevelWeak)
	if err != nil {
		t.Fatal(err)
	}
	if v.Value != "w" {
		t.Errorf("WaitLevel(weak) = %v, want the first weak view", v.Value)
	}
}

func TestWaitLevelNoView(t *testing.T) {
	c, ctrl := New[any]()
	_ = ctrl.Close("w", LevelWeak)
	if _, err := c.WaitLevel(context.Background(), LevelStrong); !errors.Is(err, ErrNoView) {
		t.Errorf("WaitLevel = %v, want ErrNoView", err)
	}
}

func TestFirst(t *testing.T) {
	c, ctrl := New[any]()
	go func() { _ = ctrl.Update(42, LevelCache) }()
	v, err := c.First(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v.Value != 42 || v.Level != LevelCache {
		t.Errorf("First = %+v", v)
	}
}

func TestLatest(t *testing.T) {
	c, ctrl := New[any]()
	if _, ok := c.Latest(); ok {
		t.Error("Latest on empty correctable reported ok")
	}
	_ = ctrl.Update(1, LevelWeak)
	v, ok := c.Latest()
	if !ok || v.Value != 1 {
		t.Errorf("Latest = %+v, %v", v, ok)
	}
}

func TestDoneChannel(t *testing.T) {
	c, ctrl := New[any]()
	select {
	case <-c.Done():
		t.Fatal("Done closed before terminal transition")
	default:
	}
	_ = ctrl.Close(1, LevelStrong)
	select {
	case <-c.Done():
	case <-time.After(time.Second):
		t.Fatal("Done not closed after Close")
	}
}

func TestFailNilError(t *testing.T) {
	c, ctrl := New[any]()
	if err := ctrl.Fail(nil); err != nil {
		t.Fatal(err)
	}
	if c.Err() == nil {
		t.Error("Fail(nil) should synthesize a non-nil error")
	}
}

func TestConcurrentSubscribersSeeConsistentHistory(t *testing.T) {
	c, ctrl := New[any]()
	const subs = 16
	var wg sync.WaitGroup
	var mu sync.Mutex
	results := make([][]interface{}, subs)
	wg.Add(subs)
	for i := 0; i < subs; i++ {
		i := i
		go func() {
			defer wg.Done()
			c.SetCallbacks(Callbacks[any]{OnUpdate: func(v View[any]) {
				mu.Lock()
				results[i] = append(results[i], v.Value)
				mu.Unlock()
			}})
		}()
	}
	go func() {
		for k := 0; k < 10; k++ {
			_ = ctrl.Update(k, LevelWeak)
		}
		_ = ctrl.Close(10, LevelStrong)
	}()
	wg.Wait()
	<-c.Done()
	// Give dispatch a moment to finish any tail callbacks attached late.
	deadline := time.Now().Add(2 * time.Second)
	for i := 0; i < subs; i++ {
		for {
			mu.Lock()
			n := len(results[i])
			mu.Unlock()
			if n == 11 || time.Now().After(deadline) {
				break
			}
			time.Sleep(time.Millisecond)
		}
		mu.Lock()
		got := append([]interface{}(nil), results[i]...)
		mu.Unlock()
		if len(got) != 11 {
			t.Fatalf("subscriber %d saw %d views, want 11 (%v)", i, len(got), got)
		}
		for k, v := range got {
			if v != k {
				t.Fatalf("subscriber %d: view %d = %v, want %v (in-order delivery)", i, k, v, k)
			}
		}
	}
}

// Property: for any sequence of updates followed by a close, every callback
// sees the values in exactly the delivered order, OnFinal fires exactly
// once, and Views() matches.
func TestPropertyDeliveryOrder(t *testing.T) {
	f := func(vals []int) bool {
		c, ctrl := New[any]()
		var got []int
		finals := 0
		c.SetCallbacks(Callbacks[any]{
			OnUpdate: func(v View[any]) { got = append(got, v.Value.(int)) },
			OnFinal:  func(View[any]) { finals++ },
		})
		for _, v := range vals {
			if err := ctrl.Update(v, LevelWeak); err != nil {
				return false
			}
		}
		if err := ctrl.Close(-1, LevelStrong); err != nil {
			return false
		}
		if finals != 1 {
			return false
		}
		if len(got) != len(vals)+1 {
			return false
		}
		for i, v := range vals {
			if got[i] != v {
				return false
			}
		}
		if got[len(got)-1] != -1 {
			return false
		}
		// Views() agrees and the last view is the only final one.
		vs := c.Views()
		if len(vs) != len(vals)+1 {
			return false
		}
		for i, v := range vs {
			if v.Index != i || v.Final != (i == len(vs)-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: exactly one terminal transition wins under concurrency.
func TestPropertySingleTerminalTransition(t *testing.T) {
	f := func(n uint8) bool {
		workers := int(n%8) + 2
		c, ctrl := New[any]()
		var wins int32
		var mu sync.Mutex
		var wg sync.WaitGroup
		wg.Add(workers)
		for i := 0; i < workers; i++ {
			i := i
			go func() {
				defer wg.Done()
				var err error
				if i%2 == 0 {
					err = ctrl.Close(i, LevelStrong)
				} else {
					err = ctrl.Fail(errors.New("e"))
				}
				if err == nil {
					mu.Lock()
					wins++
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		return wins == 1 && c.State() != StateUpdating
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestValuesEqual(t *testing.T) {
	if !ValuesEqual([]byte{1, 2}, []byte{1, 2}) {
		t.Error("equal byte slices reported unequal")
	}
	if ValuesEqual([]byte{1}, []byte{2}) {
		t.Error("different byte slices reported equal")
	}
	if !ValuesEqual[any](nil, nil) {
		t.Error("nil values should be equal")
	}
	if ValuesEqual[any]("a", 1) {
		t.Error("mismatched types reported equal")
	}
}

type evenEqualer int

func (e evenEqualer) EqualValue(other interface{}) bool {
	switch o := other.(type) {
	case evenEqualer:
		return int(e)%2 == int(o)%2
	case int:
		return int(e)%2 == o%2
	default:
		return false
	}
}

func TestValuesEqualCustomEqualer(t *testing.T) {
	if !ValuesEqual[any](evenEqualer(2), evenEqualer(4)) {
		t.Error("custom equaler not consulted (a)")
	}
	if ValuesEqual[any](evenEqualer(1), evenEqualer(4)) {
		t.Error("custom equaler mismatch not detected")
	}
	if !ValuesEqual[any](4, evenEqualer(2)) {
		t.Error("custom equaler not consulted on second operand")
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		StateUpdating: "updating",
		StateFinal:    "final",
		StateError:    "error",
		State(9):      "state(9)",
	} {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", s, got, want)
		}
	}
}
