package correctables_test

// Benchmarks regenerating the paper's evaluation, one per table/figure
// (§6). Each benchmark runs the corresponding bench-package driver in quick
// mode at a fast time scale and reports headline metrics via b.ReportMetric
// on the paper's units (model-time milliseconds, kB/op, percent), so
// `go test -bench=.` doubles as a smoke reproduction of the whole
// evaluation. cmd/icgbench runs the full-size versions.

import (
	"testing"

	"correctables/internal/bench"
	"correctables/internal/metrics"
	"correctables/internal/ycsb"
)

func quickCfg(seed int64) bench.Config {
	return bench.Config{Scale: 0.1, Seed: seed, Quick: true}
}

// BenchmarkFig5SingleRequestLatency regenerates Figure 5: single-request
// read latencies for C1/C2/C3 vs CC2/CC3 preliminary+final views.
func BenchmarkFig5SingleRequestLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Fig5(quickCfg(int64(i)))
		for _, r := range rows {
			switch r.System {
			case "C1":
				b.ReportMetric(metrics.Ms(r.Avg), "C1-avg-ms")
			case "CC2 preliminary":
				b.ReportMetric(metrics.Ms(r.Avg), "CC2-prelim-ms")
			case "CC2 final":
				b.ReportMetric(metrics.Ms(r.Avg), "CC2-final-ms")
			case "CC3 final":
				b.ReportMetric(metrics.Ms(r.P99), "CC3-final-p99-ms")
			}
		}
	}
}

// BenchmarkFig6PerformanceUnderLoad regenerates Figure 6: YCSB A/B/C
// latency vs throughput for C1, C2 and CC2.
func BenchmarkFig6PerformanceUnderLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Fig6(quickCfg(int64(i)))
		for _, r := range rows {
			if r.Workload == "A" && r.System == "CC2 final" {
				b.ReportMetric(r.Throughput, "A-CC2-ops/s")
				b.ReportMetric(metrics.Ms(r.Latency), "A-CC2-final-ms")
			}
		}
	}
}

// BenchmarkFig7Divergence regenerates Figure 7: divergence of preliminary
// from final views under YCSB A/B with Latest/Zipfian key choice.
func BenchmarkFig7Divergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Fig7(quickCfg(int64(i)))
		var worst float64
		for _, r := range rows {
			if r.Workload == "A" && r.Distribution == ycsb.DistLatest && r.DivergencePct > worst {
				worst = r.DivergencePct
			}
		}
		b.ReportMetric(worst, "A-latest-divergence-%")
	}
}

// BenchmarkFig8Bandwidth regenerates Figure 8: client-link kB/op for C1 vs
// CC2 vs *CC2 (confirmation optimization).
func BenchmarkFig8Bandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Fig8(quickCfg(int64(i)))
		for _, r := range rows {
			if r.Workload == "A" && r.Distribution == ycsb.DistLatest {
				switch r.System {
				case "CC2":
					b.ReportMetric(r.OverheadPct, "A-latest-CC2-overhead-%")
				case "*CC2":
					b.ReportMetric(r.OverheadPct, "A-latest-optCC2-overhead-%")
				}
			}
		}
	}
}

// BenchmarkFig9ZooKeeperLatencyGaps regenerates Figure 9: CZK preliminary/
// final enqueue latency vs ZK across four leader/contact placements.
func BenchmarkFig9ZooKeeperLatencyGaps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Fig9(quickCfg(int64(i)))
		for _, r := range rows {
			if r.Placement == "Follower (IRL), leader VRG" {
				switch r.Series {
				case "CZK preliminary":
					b.ReportMetric(metrics.Ms(r.Avg), "prelim-ms")
				case "CZK final":
					b.ReportMetric(metrics.Ms(r.Avg), "final-ms")
				}
			}
		}
	}
}

// BenchmarkFig10DequeueBandwidth regenerates Figure 10: dequeue kB/op, ZK
// (grows with queue size) vs CZK (constant).
func BenchmarkFig10DequeueBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Fig10(quickCfg(int64(i)))
		for _, r := range rows {
			if r.Clients == 1 && r.QueueSize == 500 {
				b.ReportMetric(r.KBPerOp, r.System+"-kB/op")
			}
		}
	}
}

// BenchmarkFig11SpeculationCaseStudies regenerates Figure 11: end-to-end
// latency of fetchAdsByUserId and get_timeline, baseline vs speculative.
func BenchmarkFig11SpeculationCaseStudies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Fig11(quickCfg(int64(i)))
		for _, r := range rows {
			if r.Workload == "B" && r.Threads == 2 {
				b.ReportMetric(metrics.Ms(r.Latency), r.App+"-"+r.System+"-ms")
			}
		}
	}
}

// BenchmarkFig12TicketSelling regenerates Figure 12: per-ticket purchase
// latency with the last-20 threshold, CZK vs ZK.
func BenchmarkFig12TicketSelling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, summaries := bench.Fig12(quickCfg(int64(i)))
		for _, s := range summaries {
			if s.System == "CZK" {
				b.ReportMetric(metrics.Ms(s.FastAvg), "CZK-fast-ms")
				b.ReportMetric(metrics.Ms(s.SlowAvg), "CZK-slow-ms")
			} else {
				b.ReportMetric(metrics.Ms(s.SlowAvg), "ZK-ms")
			}
		}
	}
}
