module correctables

go 1.24
