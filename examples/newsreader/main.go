// Progressive news display over incremental views (paper §4.4, Listing 6).
//
// A news feed is replicated primary (Virginia) / backups (Frankfurt,
// Ireland), with a client-side cache on the phone in Ireland. One logical
// getLatestNews() call refreshes the display three times: from the cache
// (instantly, possibly stale), from the closest backup (causally
// consistent), and from the primary (most up to date).
//
// Run with: go run ./examples/newsreader
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"correctables/internal/apps/newsreader"
	"correctables/internal/causal"
	"correctables/internal/netsim"
)

func main() {
	clock := netsim.NewVirtualClock()
	transport := netsim.NewTransport(clock, netsim.DefaultLatencies(), netsim.NewMeter(), 5)
	store, err := causal.NewStore(causal.Config{
		Primary:   netsim.VRG,
		Backups:   []netsim.Region{netsim.FRK, netsim.IRL},
		Transport: transport,
	})
	if err != nil {
		log.Fatal(err)
	}
	store.Preload(newsreader.FeedKey, []byte("gophers ship replicated objects\nsleep granularity strikes again"))

	phone := newsreader.NewReader(causal.NewBinding(causal.NewClient(store, netsim.IRL)))
	ctx := context.Background()

	fmt.Println("-- first read (cold cache) --")
	display := func(u newsreader.Update) {
		fmt.Printf("[%6v, %-6s] %d headlines; top: %q\n",
			u.At.Round(time.Millisecond), u.Level, len(u.Items), top(u.Items))
	}
	if _, err := phone.GetLatestNews(ctx, display); err != nil {
		log.Fatal(err)
	}

	// The newsroom publishes a new headline through the primary.
	newsroom := newsreader.NewReader(causal.NewBinding(causal.NewClient(store, netsim.NCA)))
	if err := newsroom.Publish(ctx, "BREAKING: preliminary views considered helpful", 5); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n-- second read (warm but stale cache) --")
	if _, err := phone.GetLatestNews(ctx, display); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthe display refreshes as fresher views arrive — the cache view shows")
	fmt.Println("yesterday's top story, the primary view shows the breaking one.")
}

func top(items []string) string {
	if len(items) == 0 {
		return "(empty)"
	}
	return items[0]
}
