// Ad serving with speculation (paper §4.2, Listing 4; Fig 11).
//
// fetchAdsByUserId first reads the user's personalized ad references, then
// fetches the referenced ads. With ICG the reference read uses invoke() and
// the ad fetch runs speculatively on the preliminary view; the demo prints
// side-by-side latencies against the strong-read baseline.
//
// Run with: go run ./examples/adserver
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"correctables/internal/apps/adserver"
	"correctables/internal/cassandra"
	"correctables/internal/netsim"
)

func main() {
	clock := netsim.NewVirtualClock()
	transport := netsim.NewTransport(clock, netsim.DefaultLatencies(), netsim.NewMeter(), 7)

	newCluster := func(correctable bool) *cassandra.Cluster {
		cluster, err := cassandra.NewCluster(cassandra.Config{
			Regions:         []netsim.Region{netsim.FRK, netsim.IRL, netsim.VRG},
			Transport:       transport,
			Correctable:     correctable,
			ConfirmationOpt: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		adserver.Load(cluster, adserver.LoadOptions{
			Profiles: 200, Ads: 1000, MaxRefs: 6, AdBodySize: 400, Seed: 7,
		})
		return cluster
	}

	service := func(cluster *cassandra.Cluster) *adserver.Service {
		b := cassandra.NewBinding(cassandra.NewClient(cluster, netsim.IRL, netsim.FRK), cassandra.BindingConfig{})
		return adserver.NewService(b)
	}

	baseline := service(newCluster(false))
	speculative := service(newCluster(true))
	ctx := context.Background()

	fmt.Println("user | baseline (C2)      | speculative (CC2)")
	fmt.Println("-----+--------------------+------------------------------------")
	var baseTotal, specTotal time.Duration
	const users = 8
	for uid := 0; uid < users; uid++ {
		bo, err := baseline.FetchAdsByUserID(ctx, uid, false)
		if err != nil {
			log.Fatal(err)
		}
		so, err := speculative.FetchAdsByUserID(ctx, uid, true)
		if err != nil {
			log.Fatal(err)
		}
		baseTotal += bo.Latency
		specTotal += so.Latency
		fmt.Printf("%4d | %3d ads in %6v | %3d ads in %6v (prelim at %v, misspec=%v)\n",
			uid, len(bo.Ads), bo.Latency.Round(time.Millisecond),
			len(so.Ads), so.Latency.Round(time.Millisecond),
			so.PrelimAt.Round(time.Millisecond), so.Misspeculated)
	}
	base, spec := baseTotal/users, specTotal/users
	fmt.Printf("\naverage: baseline %v, speculative %v (%.0f%% lower — paper reports up to 40%%)\n",
		base.Round(time.Millisecond), spec.Round(time.Millisecond),
		100*(1-float64(spec)/float64(base)))
}
