// Ticket selling with dynamic consistency selection (paper §4.3,
// Listing 5; Fig 12).
//
// Four retailers colocated with the Frankfurt follower sell a fixed stock
// of tickets from a ZooKeeper-style replicated queue whose leader is in
// Ireland. While more than 20 tickets remain, purchases confirm on the
// preliminary (locally simulated) dequeue in ~2ms; the last 20 tickets wait
// for the atomic dequeue (~60ms) to avoid overselling.
//
// The whole sale runs on the deterministic virtual clock, so it completes
// instantly while still reporting the model-time latencies a real WAN
// deployment would observe.
//
// Run with: go run ./examples/tickets
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"correctables"
	"correctables/internal/apps/tickets"
	"correctables/internal/netsim"
	"correctables/internal/zk"
)

func main() {
	clock := netsim.NewVirtualClock()
	transport := netsim.NewTransport(clock, netsim.DefaultLatencies(), netsim.NewMeter(), 3)
	ensemble, err := zk.NewEnsemble(zk.Config{
		Regions:      []netsim.Region{netsim.FRK, netsim.IRL, netsim.VRG},
		LeaderRegion: netsim.IRL,
		Transport:    transport,
		Correctable:  true,
	})
	if err != nil {
		log.Fatal(err)
	}

	const stock = 120
	tickets.Stock(ensemble, "gophercon", stock)
	fmt.Printf("selling %d tickets with 4 concurrent retailers (threshold: last %d strong)\n\n",
		stock, tickets.DefaultThreshold)

	type sale struct {
		latency time.Duration
		prelim  bool
	}
	var mu sync.Mutex
	var sales []sale
	wg := clock.NewGroup()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		clock.Go(func() {
			defer wg.Done()
			retailer := tickets.NewRetailer(zk.NewBinding(zk.NewQueueClient(ensemble, netsim.FRK, netsim.FRK)))
			for {
				res, err := retailer.PurchaseTicket(context.Background(), "gophercon")
				if err != nil {
					log.Fatal(err)
				}
				if res.SoldOut {
					return
				}
				// Closed loop: the purchase decision is fast, but serve the
				// next customer only once this dequeue committed (the
				// decision latency is what counts for the buyer).
				if ticket, _ := res.Assigned.Get().(correctables.Item); !ticket.Exists {
					continue // revoked near the boundary; not a sale
				}
				mu.Lock()
				sales = append(sales, sale{res.Latency, res.UsedPreliminary})
				mu.Unlock()
			}
		})
	}
	wg.Wait()
	clock.Drain()

	var fastN, slowN int
	var fastT, slowT time.Duration
	for _, s := range sales {
		if s.prelim {
			fastN++
			fastT += s.latency
		} else {
			slowN++
			slowT += s.latency
		}
	}
	fmt.Printf("sold %d tickets\n", len(sales))
	if fastN > 0 {
		fmt.Printf("  %3d fast purchases (weak view, stock plentiful): avg %.1fms\n",
			fastN, float64(fastT.Microseconds())/float64(fastN)/1000)
	}
	if slowN > 0 {
		fmt.Printf("  %3d slow purchases (final view, near sell-out):  avg %.1fms\n",
			slowN, float64(slowT.Microseconds())/float64(slowN)/1000)
	}
	fmt.Println("\nonly the tail of the stock pays the coordination latency — Fig 12's shape.")
}
