// Blockchain confirmations as incremental views (paper §4.5).
//
// A Correctable is not limited to two views: this example tracks a
// simulated ledger transaction through six confirmations. Each new block
// deepens the transaction and triggers an update; at depth six the
// transaction is irrevocable with high probability and the Correctable
// closes with a strong view — same interface, arbitrarily many views.
//
// The ledger runs on the deterministic virtual clock: six Bitcoin-scale
// block intervals elapse in model time while the demo itself completes
// instantly, printing the model-time arrival of each confirmation.
//
// Run with: go run ./examples/blockchain
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"correctables"
	"correctables/internal/chain"
	"correctables/internal/netsim"
)

func main() {
	clock := netsim.NewVirtualClock()
	transport := netsim.NewTransport(clock, netsim.DefaultLatencies(), nil, 9)
	ledger, err := chain.New(chain.Config{
		Transport:     transport,
		BlockInterval: 10 * time.Minute, // Bitcoin's interval, at no wall cost
		Seed:          9,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ledger.Stop()

	const depth = 6
	client := correctables.NewClient(chain.NewBinding(ledger, depth))
	sw := clock.StartStopwatch()

	fmt.Printf("submitting payment; waiting for %d confirmations...\n", depth)
	// chain.Submit is the typed facade: views carry chain.TxStatus directly.
	cor := chain.Submit(context.Background(), client, chain.SubmitTx{ID: "pay-coffee", Data: []byte("0.0042 BTC")})
	cor.OnUpdate(func(v correctables.View[chain.TxStatus]) {
		st := v.Value
		bar := ""
		for i := 0; i < st.Confirmations; i++ {
			bar += "#"
		}
		fmt.Printf("[%9v] %-6s %-6s confirmations: %d %s\n",
			sw.ElapsedModel().Round(time.Second), v.Level, state(v), st.Confirmations, bar)
	})
	if _, err := cor.Final(context.Background()); err != nil {
		log.Fatal(err)
	}
	ledger.Stop()
	clock.Drain()
	fmt.Println("\nthe merchant could hand over the coffee at 1 confirmation (weak view)")
	fmt.Println("and reconcile at 6 (strong view) — speculation over incremental trust.")
}

func state(v correctables.View[chain.TxStatus]) string {
	if v.Final {
		return "FINAL"
	}
	return "update"
}
