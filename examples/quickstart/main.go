// Quickstart: the Correctables API in one file.
//
// It builds a small simulated Correctable-Cassandra deployment (three
// replicas: Frankfurt, Ireland, Virginia), then demonstrates the three API
// methods of the paper (§3.2) — invokeWeak, invokeStrong, invoke — and the
// speculate pattern (§4.2). Latencies printed are model time: what a client
// in Ireland contacting the Frankfurt coordinator would observe on the real
// WAN.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"correctables"
	"correctables/internal/cassandra"
	"correctables/internal/history"
	"correctables/internal/netsim"
)

func main() {
	// Simulation fabric: deterministic virtual time. The demo completes
	// instantly; all printed latencies are model time — what a client in
	// Ireland contacting the Frankfurt coordinator would observe on the
	// real WAN.
	clock := netsim.NewVirtualClock()
	transport := netsim.NewTransport(clock, netsim.DefaultLatencies(), netsim.NewMeter(), 1)

	cluster, err := cassandra.NewCluster(cassandra.Config{
		Regions:         []netsim.Region{netsim.FRK, netsim.IRL, netsim.VRG},
		Transport:       transport,
		Correctable:     true, // server-side ICG support (§5.2)
		ConfirmationOpt: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	cluster.Preload("greeting", []byte("hello, replicated world"))

	// The client lives in Ireland and contacts the Frankfurt coordinator.
	store := cassandra.NewClient(cluster, netsim.IRL, netsim.FRK)
	client := correctables.NewClient(cassandra.NewBinding(store, cassandra.BindingConfig{StrongQuorum: 2}))
	ctx := context.Background()

	// --- invokeWeak: fastest, single weakly consistent view. The typed
	// API means v.Value is a []byte — no assertions anywhere below. ---
	sw := clock.StartStopwatch()
	v, err := correctables.InvokeWeak(ctx, client, correctables.Get{Key: "greeting"}).Final(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("invokeWeak   -> %-28q level=%-6s after %v\n", v.Value, v.Level, round(sw.ElapsedModel()))

	// --- invokeStrong: quorum-reconciled, single strong view. ---
	sw = clock.StartStopwatch()
	v, err = correctables.InvokeStrong(ctx, client, correctables.Get{Key: "greeting"}).Final(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("invokeStrong -> %-28q level=%-6s after %v\n", v.Value, v.Level, round(sw.ElapsedModel()))

	// --- invoke: incremental consistency guarantees, both views. ---
	sw = clock.StartStopwatch()
	cor := correctables.Invoke(ctx, client, correctables.Get{Key: "greeting"})
	cor.OnUpdate(func(view correctables.View[[]byte]) {
		fmt.Printf("invoke       -> %-28q level=%-6s after %v (final=%v)\n",
			view.Value, view.Level, round(sw.ElapsedModel()), view.Final)
	})
	if _, err := cor.Final(ctx); err != nil {
		log.Fatal(err)
	}

	// --- speculate: hide strong-consistency latency behind work. The
	// speculation maps []byte views to a rendered string. ---
	sw = clock.StartStopwatch()
	result := correctables.Speculate(
		correctables.Invoke(ctx, client, correctables.Get{Key: "greeting"}),
		func(view correctables.View[[]byte]) (string, error) {
			// Expensive post-processing (e.g. fetching dependent objects),
			// started on the preliminary view.
			clock.Sleep(15 * time.Millisecond)
			return fmt.Sprintf("rendered(%s)", view.Value), nil
		}, nil)
	rendered, err := result.Final(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("speculate    -> %-28q level=%-6s after %v\n", rendered.Value, rendered.Level, round(sw.ElapsedModel()))
	fmt.Println()
	fmt.Println("The speculative call finishes around the strong read's latency —")
	fmt.Println("the 15ms of post-processing ran during the quorum round trip.")

	// --- sessions + checking: cross-operation guarantees, recorded and
	// verified. A Session guarantees read-your-writes and monotonic reads
	// per key (stale preliminary views are suppressed, stale final reads
	// retried); a history.Recorder on the invoke path records every
	// operation with model-time timestamps and version tokens, and the
	// checkers verify the recorded history after the fact. ---
	rec := history.NewRecorder()
	sessClient := correctables.NewClient(
		cassandra.NewBinding(store, cassandra.BindingConfig{StrongQuorum: 2}),
		correctables.WithObserver(rec),
		correctables.WithLabel("quickstart"),
	)
	sess := correctables.NewSession(sessClient)
	if _, err := sess.Put(ctx, "greeting", []byte("hello, sessions")).Final(ctx); err != nil {
		log.Fatal(err)
	}
	// Even the weakest read through the session observes the session's own
	// write — that is the guarantee, not an accident of timing.
	v, err = sess.GetWeak(ctx, "greeting").Final(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("session      -> %-28q level=%-6s (read-your-writes held)\n", v.Value, v.Level)

	ops := rec.Ops()
	violations := history.CheckSessionGuarantees(ops)
	fmt.Printf("checked      -> %d ops recorded, %d session-guarantee violations\n", len(ops), len(violations))
}

func round(d time.Duration) time.Duration { return d.Round(time.Millisecond) }
