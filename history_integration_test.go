package correctables_test

// History-checked runs across all four real bindings: one virtual-clock
// world, a crash/restart cycle in the middle, every operation issued
// through sessions with a history.Recorder on the invoke pipeline — then
// the recorded histories are verified: session guarantees on all four
// bindings, register linearizability for the cassandra keys, FIFO-queue
// linearizability for the zk queue. This is the acceptance criterion that
// the checkers report zero violations on real bindings (the mutation test
// in internal/history proves they do flag broken ones).

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"correctables"
	"correctables/internal/cassandra"
	"correctables/internal/causal"
	"correctables/internal/chain"
	"correctables/internal/faults"
	"correctables/internal/history"
	"correctables/internal/netsim"
	"correctables/internal/zk"
)

// filterKeyPrefix selects the recorded ops whose key carries a prefix, so
// per-model linearizability checks see only their own object class.
func filterKeyPrefix(ops []history.Op, prefix string) []history.Op {
	var out []history.Op
	for _, op := range ops {
		if strings.HasPrefix(op.Key, prefix) {
			out = append(out, op)
		}
	}
	return out
}

func TestHistoryCheckedAcrossAllFourBindings(t *testing.T) {
	clock := netsim.NewVirtualClock()
	tr := netsim.NewTransport(clock, netsim.DefaultLatencies(), netsim.NewMeter(), 9)
	inj := faults.Attach(tr, nil, 9)
	rec := history.NewRecorder()
	ctx := context.Background()
	opTimeout := 600 * time.Millisecond

	// --- the four stores, all on one transport ---
	cluster, err := cassandra.NewCluster(cassandra.Config{
		Regions:     []netsim.Region{netsim.FRK, netsim.IRL, netsim.VRG},
		Transport:   tr,
		Correctable: true,
		OpTimeout:   opTimeout,
		Seed:        9,
	})
	if err != nil {
		t.Fatal(err)
	}
	ensemble, err := zk.NewEnsemble(zk.Config{
		Regions:      []netsim.Region{netsim.FRK, netsim.IRL, netsim.VRG},
		LeaderRegion: netsim.FRK,
		Transport:    tr,
		Correctable:  true,
		OpTimeout:    opTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	store, err := causal.NewStore(causal.Config{
		Primary:   netsim.FRK,
		Backups:   []netsim.Region{netsim.IRL, netsim.VRG},
		Transport: tr,
		OpTimeout: opTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	ledger, err := chain.New(chain.Config{
		Transport:     tr,
		BlockInterval: 40 * time.Millisecond,
		MinerRegion:   netsim.IRL,
		Seed:          9,
	})
	if err != nil {
		t.Fatal(err)
	}

	// --- session clients, all observed by one recorder ---
	cassSess := correctables.NewSession(correctables.NewClient(
		cassandra.NewBinding(cassandra.NewClient(cluster, netsim.IRL, netsim.FRK), cassandra.BindingConfig{StrongQuorum: 3}),
		correctables.WithObserver(rec), correctables.WithLabel("cass")))
	zkSess := correctables.NewSession(correctables.NewClient(
		zk.NewBinding(zk.NewQueueClient(ensemble, netsim.IRL, netsim.IRL)),
		correctables.WithObserver(rec), correctables.WithLabel("zk")))
	causalSess := correctables.NewSession(correctables.NewClient(
		causal.NewBinding(causal.NewClient(store, netsim.VRG)),
		correctables.WithObserver(rec), correctables.WithLabel("causal")))
	chainClient := correctables.NewClient(chain.NewBinding(ledger, 2),
		correctables.WithObserver(rec), correctables.WithLabel("chain"),
		correctables.WithOpTimeout(2*time.Second))
	chainSess := correctables.NewSession(chainClient)

	if err := zk.NewQueueClient(ensemble, netsim.IRL, netsim.IRL).CreateQueue("hist"); err != nil {
		t.Fatal(err)
	}

	// One round of traffic on every binding; errors are legitimate under
	// the crash window (recorded as ambiguous ops), except during healthy
	// phases where they would hide coverage.
	round := func(phase string, wantClean bool) {
		fail := func(binding string, err error) {
			if wantClean && err != nil {
				t.Fatalf("%s: %s op failed in healthy phase: %v", phase, binding, err)
			}
		}
		for i := 0; i < 4; i++ {
			_, err := cassSess.Put(ctx, fmt.Sprintf("ck-%d", i%2), []byte(phase)).Final(ctx)
			fail("cassandra", err)
			_, err = cassSess.Get(ctx, fmt.Sprintf("ck-%d", i%2)).Final(ctx)
			fail("cassandra", err)
		}
		for i := 0; i < 2; i++ {
			_, err := zkSess.Enqueue(ctx, "hist", []byte(phase)).Final(ctx)
			fail("zk", err)
		}
		_, err := zkSess.Dequeue(ctx, "hist").Final(ctx)
		fail("zk", err)
		for i := 0; i < 2; i++ {
			_, err := causalSess.Put(ctx, fmt.Sprintf("cau-%d", i), []byte(phase)).Final(ctx)
			fail("causal", err)
			_, err = causalSess.Get(ctx, fmt.Sprintf("cau-%d", i)).Final(ctx)
			fail("causal", err)
		}
		_, err = correctables.SessionInvoke[chain.TxStatus](ctx, chainSess,
			chain.SubmitTx{ID: "tx-" + phase, Data: []byte(phase)}).Final(ctx)
		fail("chain", err)
	}

	round("healthy", true)
	inj.Apply(faults.Crash{Region: netsim.VRG})
	round("crash", false) // strong cassandra reads need VRG: timeouts expected
	inj.Apply(faults.Restart{Region: netsim.VRG})
	clock.Sleep(time.Second) // resync state transfers land
	round("recovered", false)

	ledger.Stop()
	inj.Quiesce()
	clock.Drain()

	// --- verify ---
	ops := rec.Ops()
	if len(ops) < 30 {
		t.Fatalf("recorded only %d ops", len(ops))
	}
	byClient := map[string]int{}
	for _, op := range ops {
		byClient[op.Client]++
	}
	for _, client := range []string{"cass", "zk", "causal", "chain"} {
		if byClient[client] == 0 {
			t.Errorf("no ops recorded for the %s binding", client)
		}
	}
	for _, v := range history.CheckSessionGuarantees(ops) {
		t.Errorf("session violation: %s", v)
	}
	linVs, inconclusive := history.CheckRegisters(filterKeyPrefix(ops, "ck-"), 0)
	for _, v := range linVs {
		t.Errorf("cassandra register violation: %s", v)
	}
	qVs, qInc := history.CheckQueues(filterKeyPrefix(ops, "hist"), 0)
	for _, v := range qVs {
		t.Errorf("zk queue violation: %s", v)
	}
	if len(inconclusive)+len(qInc) != 0 {
		t.Errorf("inconclusive checks: %v %v", inconclusive, qInc)
	}
}
