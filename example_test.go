package correctables_test

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"correctables"
	"correctables/internal/bench"
	"correctables/internal/cassandra"
	"correctables/internal/faults"
	"correctables/internal/load"
	"correctables/internal/netsim"
	"correctables/internal/zk"
)

// newExampleClient builds a three-region Correctable-Cassandra deployment
// on the deterministic virtual clock, preloaded with one key. All examples
// run instantly and print the same thing on every machine.
func newExampleClient(key, value string, opts ...correctables.Option) *correctables.Client {
	clock := netsim.NewVirtualClock()
	tr := netsim.NewTransport(clock, netsim.DefaultLatencies(), netsim.NewMeter(), 1)
	cluster, err := cassandra.NewCluster(cassandra.Config{
		Regions:         []netsim.Region{netsim.FRK, netsim.IRL, netsim.VRG},
		Transport:       tr,
		Correctable:     true,
		ConfirmationOpt: true,
	})
	if err != nil {
		panic(err)
	}
	cluster.Preload(key, []byte(value))
	return correctables.NewClient(cassandra.NewBinding(
		cassandra.NewClient(cluster, netsim.IRL, netsim.FRK), cassandra.BindingConfig{}), opts...)
}

// ExampleInvoke shows incremental consistency guarantees: one logical read,
// one typed view per consistency level, weakest first.
func ExampleInvoke() {
	client := newExampleClient("user:42", "ada")
	ctx := context.Background()

	cor := correctables.Invoke(ctx, client, correctables.Get{Key: "user:42"})
	cor.OnUpdate(func(v correctables.View[[]byte]) {
		fmt.Printf("%s view: %s (final=%v)\n", v.Level, v.Value, v.Final)
	})
	if _, err := cor.Final(ctx); err != nil {
		fmt.Println("error:", err)
	}
	// Output:
	// weak view: ada (final=false)
	// strong view: ada (final=true)
}

// ExampleInvokeWeak reads at the weakest level only — a single fast view,
// typed []byte, no assertions.
func ExampleInvokeWeak() {
	client := newExampleClient("greeting", "hello")
	v, err := correctables.InvokeWeak(context.Background(), client, correctables.Get{Key: "greeting"}).
		Final(context.Background())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%s at level %s\n", v.Value, v.Level)
	// Output:
	// hello at level weak
}

// ExampleSpeculate hides strong-consistency latency: the speculation
// function runs on the preliminary view and the result is confirmed (or
// recomputed) when the final view arrives. The result type may differ from
// the source type — here []byte views become a rendered string.
func ExampleSpeculate() {
	client := newExampleClient("ads:7", "sneakers")
	ctx := context.Background()

	rendered := correctables.Speculate(
		correctables.Invoke(ctx, client, correctables.Get{Key: "ads:7"}),
		func(v correctables.View[[]byte]) (string, error) {
			return "ad<" + string(v.Value) + ">", nil
		}, nil)
	v, err := rendered.Final(ctx)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(v.Value, "-", v.Level)
	// Output:
	// ad<sneakers> - strong
}

// ExampleAll aggregates typed Correctables: the result value is a []T with
// every child's latest value.
func ExampleAll() {
	a := correctables.Resolved([]byte("x"), correctables.LevelStrong)
	b := correctables.Resolved([]byte("y"), correctables.LevelWeak)
	v, err := correctables.All(a, b).Final(context.Background())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%s%s at level %s\n", v.Value[0], v.Value[1], v.Level)
	// Output:
	// xy at level weak
}

// ExampleCorrectable_WaitLevel blocks until a view at least as strong as
// the requested level has arrived.
func ExampleCorrectable_WaitLevel() {
	client := newExampleClient("k", "v")
	ctx := context.Background()
	cor := correctables.Invoke(ctx, client, correctables.Get{Key: "k"})
	v, err := cor.WaitLevel(ctx, correctables.LevelWeak)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("first >=weak view: %s at %s\n", v.Value, v.Level)
	// Output:
	// first >=weak view: v at weak
}

// printObserver is a minimal Observer: it prints the invoke pipeline's
// event stream. Real observers (history.Recorder) record instead of print.
type printObserver struct{}

func (printObserver) OpStart(op correctables.OpInfo) {
	fmt.Printf("start %s(%s) by %s\n", op.Name, op.Key, op.Client)
}
func (printObserver) OpView(op correctables.OpInfo, v correctables.OpView) {
	// v.Version is the binding's per-object version token (opaque;
	// comparable within one object).
	fmt.Printf("  %s view, versioned=%v, final=%v\n", v.Level, v.Version > 0, v.Final)
}
func (printObserver) OpEnd(op correctables.OpInfo, at time.Duration, err error) {
	fmt.Printf("end %s(%s) err=%v\n", op.Name, op.Key, err)
}

// ExampleWithObserver hooks the invoke pipeline: every operation's start,
// views (with consistency level and version token) and end are observable —
// the recording surface consistency checkers build on.
func ExampleWithObserver() {
	client := newExampleClient("user:7", "grace",
		correctables.WithObserver(printObserver{}), correctables.WithLabel("app"))
	ctx := context.Background()
	if _, err := correctables.Invoke(ctx, client, correctables.Get{Key: "user:7"}).Final(ctx); err != nil {
		fmt.Println("error:", err)
	}
	// Output:
	// start get(user:7) by app
	//   weak view, versioned=true, final=false
	//   strong view, versioned=true, final=true
	// end get(user:7) err=<nil>
}

// ExampleNewSession shows cross-operation guarantees: a session tracks the
// versions it has read and written per key, so a read after the session's
// own write never observes older state — at any consistency level. (A bare
// client promises nothing across operations; a stale preliminary after
// your own write is exactly what sessions suppress.)
func ExampleNewSession() {
	client := newExampleClient("profile:9", "old")
	ctx := context.Background()
	sess := correctables.NewSession(client)

	if _, err := sess.Put(ctx, "profile:9", []byte("new")).Final(ctx); err != nil {
		fmt.Println("error:", err)
		return
	}
	cor := sess.Get(ctx, "profile:9")
	cor.OnUpdate(func(v correctables.View[[]byte]) {
		fmt.Printf("%s view: %s\n", v.Level, v.Value)
	})
	if _, err := cor.Final(ctx); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("session floor raised: %v\n", sess.Floor("profile:9") > 0)
	// Output:
	// weak view: new
	// strong view: new
	// session floor raised: true
}

// ExampleWithOpTimeout bounds every invocation through a client in model
// time: an operation faults make impossible fails instead of hanging.
func ExampleWithOpTimeout() {
	client := newExampleClient("k", "v", correctables.WithOpTimeout(2*time.Second))
	fmt.Println("per-op bound:", client.OpTimeout())
	// Output:
	// per-op bound: 2s
}

// Example_failover is recovery as a first-class scenario: a partition
// severs the ZooKeeper leader's region mid-run. The severed contact keeps
// serving preliminary views from local state for the whole outage — the
// paper's availability claim — while the final acknowledgment, which needs
// a majority commit, fails with the operation timeout. Meanwhile the
// majority side elects a replacement leader, and after the heal the
// deposed leader rejoins as a follower and ordered commits flow again.
func Example_failover() {
	clock := netsim.NewVirtualClock()
	tr := netsim.NewTransport(clock, netsim.DefaultLatencies(), netsim.NewMeter(), 1)
	inj := faults.Attach(tr, nil, 1)
	ensemble, err := zk.NewEnsemble(zk.Config{
		Regions:           []netsim.Region{netsim.FRK, netsim.IRL, netsim.VRG},
		LeaderRegion:      netsim.FRK,
		Transport:         tr,
		Correctable:       true,
		OpTimeout:         2 * time.Second,
		HeartbeatInterval: 250 * time.Millisecond,
		ElectionTimeout:   time.Second,
	})
	if err != nil {
		panic(err)
	}
	qc := zk.NewQueueClient(ensemble, netsim.FRK, netsim.FRK)
	if err := qc.CreateQueue("jobs"); err != nil {
		panic(err)
	}

	// Sever the leader: no majority commit is possible anywhere until the
	// election, and none through this contact until the heal.
	inj.Apply(faults.Partition{Groups: [][]netsim.Region{
		{netsim.FRK}, {netsim.IRL, netsim.VRG}}})

	err = qc.Enqueue("jobs", []byte("job-1"), true, func(v zk.QueueView) {
		if !v.Final {
			fmt.Printf("outage: preliminary view of %s served, final pending\n", v.Element.Data)
		}
	})
	fmt.Println("outage: final view:", err)

	rec := ensemble.Elections()[0]
	fmt.Printf("recovered: %s elected for epoch %d after %v\n", rec.Leader, rec.Epoch, rec.At)

	inj.Apply(faults.Heal{})
	clock.Sleep(time.Second) // the deposed leader rejoins and resyncs
	err = qc.Enqueue("jobs", []byte("job-2"), false, func(zk.QueueView) {})
	fmt.Println("healed: final view error:", err)

	inj.Quiesce()
	clock.Drain()
	// Output:
	// outage: preliminary view of job-1 served, final pending
	// outage: final view: faults: service unreachable: no response within 2s
	// recovered: eu-ireland elected for epoch 1 after 1.336092396s
	// healed: final view error: <nil>
}

// Example_overload shows admission control end to end: a load.Controller
// gates every invocation with per-client token buckets and adaptive
// backpressure. A client over its budget is rejected with a retryable
// error (the attached retry policy re-submits it after a seeded backoff);
// under sustained coordinator queueing the controller degrades reads to
// the preliminary level only — the cheap mode that breaks retry storms —
// and lifts the mode once the queue delay stays clean.
func Example_overload() {
	clock := netsim.NewVirtualClock()
	tr := netsim.NewTransport(clock, netsim.DefaultLatencies(), netsim.NewMeter(), 1)
	cluster, err := cassandra.NewCluster(cassandra.Config{
		Regions:     []netsim.Region{netsim.FRK, netsim.IRL, netsim.VRG},
		Transport:   tr,
		Correctable: true,
	})
	if err != nil {
		panic(err)
	}
	cluster.Preload("k", []byte("v"))

	// queueDelay stands in for the contact replica's measured queueing
	// delay (netsim.Server.QueueDelay in the real experiment).
	var queueDelay atomic.Int64
	ctrl := load.NewController(load.Config{
		Clock:          clock,
		PerClientRate:  2, // ops/s — tiny, so the demo can trip it
		PerClientBurst: 1,
		Sample:         func() time.Duration { return time.Duration(queueDelay.Load()) },
		SampleEvery:    50 * time.Millisecond,
		Threshold:      50 * time.Millisecond,
		MaxRate:        1000,
		DegradeToWeak:  true,
	})
	ctrl.Start()

	client := correctables.NewClient(cassandra.NewBinding(
		cassandra.NewClient(cluster, netsim.IRL, netsim.FRK), cassandra.BindingConfig{}),
		correctables.WithLabel("app"),
		correctables.WithAdmission(ctrl),
		correctables.WithRetry(correctables.RetryPolicy{
			Max:  1,
			Base: 600 * time.Millisecond,
			OnRetry: func(attempt int, delay time.Duration, err error) {
				fmt.Printf("rejected: retry %d in %v (%v)\n", attempt, delay, err)
			},
		}))
	ctx := context.Background()
	get := func(label string) {
		v, err := correctables.Invoke(ctx, client, correctables.Get{Key: "k"}).Final(ctx)
		if err != nil {
			fmt.Printf("%s: error: %v\n", label, err)
			return
		}
		fmt.Printf("%s: %s view of %s (final=%v)\n", label, v.Level, v.Value, v.Final)
	}

	get("healthy") // spends the client bucket's one-token burst
	get("retried") // over budget: rejected, re-submitted after the backoff

	// Sustained coordinator queueing: consecutive over-threshold samples
	// engage degrade-to-preliminary shedding.
	queueDelay.Store(int64(200 * time.Millisecond))
	clock.Sleep(700 * time.Millisecond)
	get("degraded")

	// The queue drains; clean samples lift the mode (with hysteresis).
	queueDelay.Store(0)
	clock.Sleep(700 * time.Millisecond)
	get("recovered")

	ctrl.Stop()
	clock.Drain()
	// Output:
	// healthy: strong view of v (final=true)
	// rejected: retry 1 in 600ms (load: rejected by admission control: client "app" over its rate limit (2 ops/s))
	// retried: strong view of v (final=true)
	// degraded: weak view of v (final=true)
	// recovered: strong view of v (final=true)
}

// Example_capacity runs the sharded-plane capacity study at smoke scale:
// per shard count, open-loop Poisson session storms flow through the AIMD
// admission gate into per-region token-aware batched coordinator stacks on
// one virtual clock, and each cell reports attained throughput, per-shard
// fairness and a consistency-checked sub-population. The full-size run
// (`icgbench -exp capacity`) starts over a million sessions in the widest
// cell and writes BENCH_capacity.json.
func Example_capacity() {
	res := bench.Capacity(bench.Config{Seed: 42, Quick: true})
	for _, r := range res.Rows {
		served := true
		for _, n := range r.PerShardHandled {
			served = served && n > 0
		}
		fmt.Printf("shards=%d: all sessions completed=%v, every shard served=%v, checks clean=%v\n",
			r.Shards, r.SessionsCompleted == r.SessionsStarted, served,
			r.Check.Violations() == 0)
	}
	fmt.Printf("ops throughput scaled >=3x from 1 to 8 shards: %v\n", res.ScalingX >= 3)
	// Output:
	// shards=1: all sessions completed=true, every shard served=true, checks clean=true
	// shards=2: all sessions completed=true, every shard served=true, checks clean=true
	// shards=4: all sessions completed=true, every shard served=true, checks clean=true
	// shards=8: all sessions completed=true, every shard served=true, checks clean=true
	// ops throughput scaled >=3x from 1 to 8 shards: true
}

// Example_hunt runs the nemesis hunt end to end against its own planted
// bug: a sweep of seeds over composed fault tracks (concurrent partition,
// crash and lossy-WAN schedules plus open-loop arrivals), every recorded
// history run through every checker, and the violating world shrunk by
// delta debugging into a minimal repro whose replay reproduces the
// violation byte for byte. A clean sweep (no planted bug) is the nightly
// CI gate; `icgbench -exp hunt` runs the full-size version.
func Example_hunt() {
	res, err := bench.Hunt(bench.Config{Seed: 42, Quick: true}, bench.HuntOptions{
		Seeds:     2,
		StartSeed: 42,
		Profiles:  []string{"tracks-harsh"},
		Workers:   2,
		Plant:     true,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("findings: %d of %d runs\n", len(res.Findings), res.Runs)
	f := res.Findings[0]
	fmt.Printf("first: %s (client %s) on %q, profile %s seed %d\n",
		f.Guarantee, f.Client, f.Key, f.Profile, f.Seed)
	fmt.Printf("shrunk: %d -> %d fault events, %d -> %d clients\n",
		f.EventsBefore, f.EventsAfter, f.ClientsBefore, f.ClientsAfter)
	rep, err := bench.HuntReplay(f.Repro)
	if err != nil {
		panic(err)
	}
	fmt.Printf("replay identical: %v\n", rep.Identical)
	// Output:
	// findings: 2 of 2 runs
	// first: monotonic-reads (client sess-02) on "k-02", profile tracks-harsh seed 42
	// shrunk: 21 -> 1 fault events, 8 -> 5 clients
	// replay identical: true
}
