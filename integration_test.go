package correctables_test

// Integration tests spanning the full stack: Correctables client ->
// binding -> simulated store, under concurrent writers. These assert the
// semantic invariants ICG promises, independent of timing.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"correctables"
	"correctables/internal/cassandra"
	"correctables/internal/netsim"
)

func newIntegrationCluster(t *testing.T) *cassandra.Cluster {
	t.Helper()
	clock := netsim.NewClock(0.05)
	tr := netsim.NewTransport(clock, netsim.DefaultLatencies(), netsim.NewMeter(), 11)
	cluster, err := cassandra.NewCluster(cassandra.Config{
		Regions:          []netsim.Region{netsim.FRK, netsim.IRL, netsim.VRG},
		Transport:        tr,
		Correctable:      true,
		ConfirmationOpt:  true,
		ReadServiceTime:  100 * time.Microsecond,
		WriteServiceTime: 100 * time.Microsecond,
		Workers:          16,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cluster
}

// TestInvariantFinalNeverOlderThanPreliminary: within a single ICG read,
// the final view reconciles the preliminary's replica with the quorum, so
// the final value version is always >= the preliminary's — even under
// heavy concurrent writing.
func TestInvariantFinalNeverOlderThanPreliminary(t *testing.T) {
	cluster := newIntegrationCluster(t)
	const keys = 8
	for i := 0; i < keys; i++ {
		cluster.Preload(fmt.Sprintf("k%d", i), []byte("v0"))
	}

	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 3; w++ {
		w := w
		writers.Add(1)
		go func() {
			defer writers.Done()
			regions := []netsim.Region{netsim.FRK, netsim.IRL, netsim.VRG}
			client := cassandra.NewClient(cluster, regions[w], regions[w])
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("k%d", i%keys)
				_ = client.Write(key, []byte(fmt.Sprintf("w%d-%d", w, i)), 1)
			}
		}()
	}

	reader := cassandra.NewClient(cluster, netsim.IRL, netsim.FRK)
	for i := 0; i < 40; i++ {
		var prelim, final cassandra.ReadView
		key := fmt.Sprintf("k%d", i%keys)
		if err := reader.Read(key, 2, true, func(v cassandra.ReadView) {
			if v.Final {
				final = v
			} else {
				prelim = v
			}
		}); err != nil {
			t.Fatal(err)
		}
		if prelim.Version.Newer(final.Version) {
			t.Fatalf("read %d: preliminary version %+v newer than final %+v",
				i, prelim.Version, final.Version)
		}
		if final.Confirmed && !prelim.Version.Same(final.Version) {
			t.Fatalf("read %d: confirmed final with differing version", i)
		}
		if !final.Confirmed && prelim.Version.Same(final.Version) {
			t.Fatalf("read %d: unconfirmed final despite identical versions", i)
		}
	}
	close(stop)
	writers.Wait()
}

// TestInvariantSpeculationEquivalentToBaseline: for any key state, a
// speculative ICG read post-processed via Speculate must produce exactly
// the value a strong read plus sequential post-processing produces.
func TestInvariantSpeculationEquivalentToBaseline(t *testing.T) {
	cluster := newIntegrationCluster(t)
	client := correctables.NewClient(cassandra.NewBinding(
		cassandra.NewClient(cluster, netsim.IRL, netsim.FRK), cassandra.BindingConfig{}))
	ctx := context.Background()

	process := func(v correctables.View[[]byte]) (string, error) {
		return "processed:" + string(v.Value), nil
	}
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("key%d", i)
		cluster.Preload(key, []byte(fmt.Sprintf("value%d", i)))

		spec, err := correctables.Speculate(
			correctables.Invoke(ctx, client, correctables.Get{Key: key}),
			process, nil).Final(ctx)
		if err != nil {
			t.Fatal(err)
		}
		strong, err := correctables.InvokeStrong(ctx, client, correctables.Get{Key: key}).Final(ctx)
		if err != nil {
			t.Fatal(err)
		}
		baseline, err := process(strong)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Value != baseline {
			t.Errorf("key %s: speculative %v != baseline %v", key, spec.Value, baseline)
		}
	}
}

// TestInvariantWeakStrongAgreeOnQuiescentData: with no writes in flight,
// every level of every API method returns the same value.
func TestInvariantWeakStrongAgreeOnQuiescentData(t *testing.T) {
	cluster := newIntegrationCluster(t)
	cluster.Preload("q", []byte("settled"))
	client := correctables.NewClient(cassandra.NewBinding(
		cassandra.NewClient(cluster, netsim.IRL, netsim.FRK), cassandra.BindingConfig{}))
	ctx := context.Background()

	weak, err := correctables.InvokeWeak(ctx, client, correctables.Get{Key: "q"}).Final(ctx)
	if err != nil {
		t.Fatal(err)
	}
	strong, err := correctables.InvokeStrong(ctx, client, correctables.Get{Key: "q"}).Final(ctx)
	if err != nil {
		t.Fatal(err)
	}
	icg := correctables.Invoke(ctx, client, correctables.Get{Key: "q"})
	final, err := icg.Final(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range [][]byte{weak.Value, strong.Value, final.Value} {
		if string(v) != "settled" {
			t.Errorf("level disagreement: %q", v)
		}
	}
	for _, v := range icg.Views() {
		if string(v.Value) != "settled" {
			t.Errorf("ICG view disagreement: %q", v.Value)
		}
	}
}

// TestInvariantWritesEventuallyVisibleEverywhere: a W=1 write converges to
// every replica (and hence to weak reads through any coordinator).
func TestInvariantWritesEventuallyVisibleEverywhere(t *testing.T) {
	cluster := newIntegrationCluster(t)
	writer := cassandra.NewClient(cluster, netsim.IRL, netsim.IRL)
	if err := writer.Write("conv", []byte("done"), 1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for _, region := range cluster.Regions() {
		for {
			if v := cluster.Replica(region).Get("conv"); string(v.Value) == "done" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("replica %s never converged", region)
			}
			time.Sleep(time.Millisecond)
		}
	}
}
