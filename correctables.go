// Package correctables is the public API of the Correctables library: an
// abstraction for programming and speculating with replicated objects,
// reproducing "Incremental Consistency Guarantees for Replicated Objects"
// (Guerraoui, Pavlovic, Seredinschi — OSDI 2016).
//
// # Overview
//
// A Correctable generalizes a Promise: instead of one future value it
// represents several incremental views of the result of one operation on a
// replicated object, each view satisfying a stronger consistency level than
// the previous. The API is generic: a Correctable[T] delivers View[T], so
// applications never see interface{} and never assert types.
//
// Applications obtain Correctables through a Client bound to a storage
// binding, using the typed Invoke functions (see ExampleInvoke and the
// other Example functions for runnable versions of the snippets below):
//
//	client := correctables.NewClient(myBinding)
//
//	// Single-level access, one view (c is a *Correctable[[]byte]):
//	c := correctables.InvokeWeak(ctx, client, correctables.Get{Key: "user:42"})
//	c := correctables.InvokeStrong(ctx, client, correctables.Get{Key: "user:42"})
//
//	// Incremental consistency guarantees (ICG), one view per level:
//	correctables.Invoke(ctx, client, correctables.Get{Key: "ads:7"}).
//		Speculate(fetchAds, nil).
//		OnFinal(func(v correctables.View[[]byte]) { deliver(v.Value) })
//
// Speculate hides the latency of strong consistency: the speculation
// function runs on the preliminary (fast, possibly stale) view, and is
// automatically re-executed if the final view diverges.
//
// # Typed operations
//
// Every operation declares its result type: Get yields []byte, Put yields
// Ack, Enqueue/Dequeue yield Item. Invoke[T] accepts any OperationFor[T],
// so the compiler connects the operation to the view type. The per-store
// facades (cassandra.KV, causal.KV, zk.Queue) wrap this once more, giving
// method-style access (kv.Get(ctx, key) → *Correctable[[]byte]).
//
// # Sessions and observers
//
// NewClient takes functional options: WithObserver hooks the invoke
// pipeline (every operation's start, views and end, with model-time
// timestamps and per-view consistency levels — the recording surface the
// internal/history checkers build on), WithOpTimeout bounds every
// invocation in model time, WithLabel names the client on observer events.
//
// A Session (NewSession) threads cross-operation guarantees over a client:
// operations issued through it are read-your-writes and monotonic-reads
// consistent per object, enforced with the version tokens the bindings
// stamp on every view. See ExampleNewSession.
//
// # Bindings
//
// A binding encapsulates everything storage-specific (§5 of the paper):
// quorum sizes, cache coherence, leader forwarding. This repository ships
// bindings for a quorum-replicated key-value store modeled on Cassandra
// (internal/cassandra), a replicated queue service modeled on ZooKeeper
// (internal/zk), a causally consistent store with a client-side cache
// (internal/causal), and a confirmation-tracking blockchain
// (internal/chain). Implement the Binding interface to add another store.
package correctables

import (
	"context"
	"time"

	"correctables/internal/binding"
	"correctables/internal/core"
)

// Core generic types, re-exported as aliases from the implementation
// packages.
type (
	// Correctable represents the progressively improving result of an
	// operation on a replicated object with value type T.
	Correctable[T any] = core.Correctable[T]
	// Controller is the producer-side handle used by bindings and tests.
	Controller[T any] = core.Controller[T]
	// View is one incremental view: a typed value plus its consistency
	// level.
	View[T any] = core.View[T]
	// Callbacks bundles the OnUpdate/OnFinal/OnError callbacks.
	Callbacks[T any] = core.Callbacks[T]
	// SpecFunc is a speculation function (see Speculate).
	SpecFunc[In, Out any] = core.SpecFunc[In, Out]
	// AbortFunc undoes a superseded speculation's side effects.
	AbortFunc[In, Out any] = core.AbortFunc[In, Out]
	// Equaler customizes divergence checks for view values of type T.
	Equaler[T any] = core.Equaler[T]

	// Level identifies a consistency level.
	Level = core.Level
	// Levels is an ordered set of consistency levels.
	Levels = core.Levels
	// State is a Correctable lifecycle state.
	State = core.State
	// Scheduler abstracts how Correctables spawn goroutines, block, and
	// read time (WithScheduler); simulation substrates supply their clock's
	// scheduler.
	Scheduler = core.Scheduler
	// Event is the one-shot broadcast used by Scheduler implementations.
	Event = core.Event

	// Client is the application-facing, consistency-based interface.
	Client = binding.Client
	// Option configures a Client at construction (see NewClient).
	Option = binding.Option
	// Session threads read-your-writes and monotonic-reads guarantees over
	// a sequence of operations (see NewSession).
	Session = binding.Session
	// SessionOption configures a Session at construction.
	SessionOption = binding.SessionOption
	// Observer hooks the client invoke pipeline (WithObserver).
	Observer = binding.Observer
	// Observers fans events out to several observers.
	Observers = binding.Observers
	// OpInfo identifies one invocation on the pipeline.
	OpInfo = binding.OpInfo
	// OpView is one delivered view as observers see it.
	OpView = binding.OpView
	// OpID is a per-client invocation sequence number.
	OpID = binding.OpID
	// Binding is the storage-binding interface (§5.1).
	Binding = binding.Binding
	// Operation is a request against a replicated object.
	Operation = binding.Operation
	// OperationFor is a typed operation whose result decodes to T.
	OperationFor[T any] = binding.OperationFor[T]
	// Keyer reports the replicated-object identity an operation targets.
	Keyer = binding.Keyer
	// Mutator classifies an operation as state-changing.
	Mutator = binding.Mutator
	// Versioner marks bindings that stamp version tokens on results.
	Versioner = binding.Versioner
	// Result is one binding response (the monomorphic wire type).
	Result = binding.Result
	// Callback receives incremental results from a binding.
	Callback = binding.Callback

	// AdmissionGate decides per invocation attempt whether the coordinator
	// should do the work at all (WithAdmission). internal/load ships the
	// token-bucket + AIMD controller used by the overload experiment.
	AdmissionGate = binding.AdmissionGate
	// AdmissionDecision is a gate's verdict: admit, degrade to the weakest
	// level, or reject.
	AdmissionDecision = binding.AdmissionDecision
	// RetryPolicy configures client-side re-submission of failed
	// invocations (WithRetry): capped exponential backoff with seeded
	// jitter.
	RetryPolicy = binding.RetryPolicy

	// Get reads a key (result: []byte). Put writes a key (result: Ack).
	// Enqueue/Dequeue operate on replicated queue objects (result: Item).
	Get     = binding.Get
	Put     = binding.Put
	Enqueue = binding.Enqueue
	Dequeue = binding.Dequeue
	// Ack is the typed result of write-style operations.
	Ack = binding.Ack
	// Item is the typed result of queue operations.
	Item = binding.Item
)

// Consistency levels, weakest to strongest.
const (
	LevelNone   = core.LevelNone
	LevelCache  = core.LevelCache
	LevelWeak   = core.LevelWeak
	LevelCausal = core.LevelCausal
	LevelStrong = core.LevelStrong
)

// Correctable lifecycle states (Figure 3 of the paper).
const (
	StateUpdating = core.StateUpdating
	StateFinal    = core.StateFinal
	StateError    = core.StateError
)

// Admission verdicts (see AdmissionGate).
const (
	AdmissionAdmit   = binding.AdmissionAdmit
	AdmissionDegrade = binding.AdmissionDegrade
	AdmissionReject  = binding.AdmissionReject
)

// Errors.
var (
	// ErrClosed is returned by Controller methods after closure.
	ErrClosed = core.ErrClosed
	// ErrNoView is returned when waiting for a level that never arrives.
	ErrNoView = core.ErrNoView
	// ErrUnsupportedOperation is wrapped by bindings rejecting an operation.
	ErrUnsupportedOperation = binding.ErrUnsupportedOperation
	// ErrUnsupportedLevel is wrapped by bindings rejecting a level.
	ErrUnsupportedLevel = binding.ErrUnsupportedLevel
	// ErrSessionGuarantee fails a session invocation whose final view
	// stayed below the session's floor after the configured retries.
	ErrSessionGuarantee = binding.ErrSessionGuarantee
)

// NewClient wraps a binding in the application-facing Client, configured
// with functional options (WithObserver, WithOpTimeout, WithScheduler,
// WithLabel).
func NewClient(b Binding, opts ...Option) *Client { return binding.NewClient(b, opts...) }

// WithObserver attaches an observer to the client's invoke pipeline (may
// be repeated; observers are notified in attachment order).
func WithObserver(o Observer) Option { return binding.WithObserver(o) }

// WithOpTimeout bounds every invocation through the client to d of model
// time, failing with an error wrapping faults.ErrUnreachable on expiry;
// d <= 0 disables the bound.
func WithOpTimeout(d time.Duration) Option { return binding.WithOpTimeout(d) }

// WithScheduler overrides the binding-provided scheduler.
func WithScheduler(s Scheduler) Option { return binding.WithScheduler(s) }

// WithLabel names the client on observer events.
func WithLabel(label string) Option { return binding.WithLabel(label) }

// WithAdmission routes every invocation attempt through gate — before any
// protocol work, retries included. Several clients may share one gate; the
// WithLabel identity keys per-client state.
func WithAdmission(gate AdmissionGate) Option { return binding.WithAdmission(gate) }

// WithRetry attaches a retry policy: failures the policy classifies as
// retryable (timeouts, admission rejections) are re-submitted with seeded
// exponential backoff.
func WithRetry(p RetryPolicy) Option { return binding.WithRetry(p) }

// IsRetryable is the default retry classification: true for errors wrapping
// faults.ErrUnreachable or declaring Retryable() true.
func IsRetryable(err error) bool { return binding.IsRetryable(err) }

// NewSession opens a session over c: operations issued through it observe
// read-your-writes and monotonic reads per replicated object (enforced
// with the bindings' version tokens — stale preliminary views are
// suppressed, stale final reads retried).
func NewSession(c *Client, opts ...SessionOption) *Session { return binding.NewSession(c, opts...) }

// WithSessionRetries sets how often a stale final read is re-executed
// before failing with ErrSessionGuarantee.
func WithSessionRetries(n int) SessionOption { return binding.WithSessionRetries(n) }

// SessionInvoke executes op through s with incremental consistency
// guarantees plus the session's cross-operation guarantees.
func SessionInvoke[T any](ctx context.Context, s *Session, op OperationFor[T], levels ...Level) *Correctable[T] {
	return binding.SessionInvoke[T](ctx, s, op, levels...)
}

// SessionInvokeWeak executes op at the weakest offered level with session
// guarantees (a stale weak read is re-executed until replication catches
// up).
func SessionInvokeWeak[T any](ctx context.Context, s *Session, op OperationFor[T]) *Correctable[T] {
	return binding.SessionInvokeWeak[T](ctx, s, op)
}

// SessionInvokeStrong executes op at the strongest offered level with
// session guarantees.
func SessionInvokeStrong[T any](ctx context.Context, s *Session, op OperationFor[T]) *Correctable[T] {
	return binding.SessionInvokeStrong[T](ctx, s, op)
}

// Invoke executes op with incremental consistency guarantees: one view per
// requested level (all levels the binding offers when none are given),
// weakest first, closing with the strongest (§3.2).
func Invoke[T any](ctx context.Context, c *Client, op OperationFor[T], levels ...Level) *Correctable[T] {
	return binding.Invoke[T](ctx, c, op, levels...)
}

// InvokeWeak executes op at the weakest available level (single view).
func InvokeWeak[T any](ctx context.Context, c *Client, op OperationFor[T]) *Correctable[T] {
	return binding.InvokeWeak[T](ctx, c, op)
}

// InvokeStrong executes op at the strongest available level (single view).
func InvokeStrong[T any](ctx context.Context, c *Client, op OperationFor[T]) *Correctable[T] {
	return binding.InvokeStrong[T](ctx, c, op)
}

// New creates an unresolved Correctable and its Controller (for binding
// implementations and tests).
func New[T any]() (*Correctable[T], Controller[T]) { return core.New[T]() }

// Speculate applies spec to every distinct view of c, re-executing on
// divergence; the result type may differ from the source type (§4.2). The
// method form c.Speculate keeps the type.
func Speculate[In, Out any](c *Correctable[In], spec SpecFunc[In, Out], abort AbortFunc[In, Out]) *Correctable[Out] {
	return core.Speculate(c, spec, abort)
}

// Map chains a synchronous transformation over every view (the monadic
// `then`); use Speculate for heavy work.
func Map[In, Out any](c *Correctable[In], f func(View[In]) (Out, error)) *Correctable[Out] {
	return core.Map(c, f)
}

// All aggregates several Correctables: updates carry the latest values of
// every child as a []T; the aggregate closes when all children have.
func All[T any](cs ...*Correctable[T]) *Correctable[[]T] { return core.All(cs...) }

// Any mirrors whichever Correctable closes first.
func Any[T any](cs ...*Correctable[T]) *Correctable[T] { return core.Any(cs...) }

// Race closes with the first view delivered by any child (§4.4).
func Race[T any](cs ...*Correctable[T]) *Correctable[T] { return core.Race(cs...) }

// Resolved returns an already-final Correctable.
func Resolved[T any](value T, level Level) *Correctable[T] { return core.Resolved(value, level) }

// Failed returns an already-errored Correctable.
func Failed[T any](err error) *Correctable[T] { return core.Failed[T](err) }

// ValuesEqual reports view-value equality as used for confirmation and
// misspeculation detection (Equaler[T] when implemented, bytes.Equal for
// []byte, reflect.DeepEqual otherwise).
func ValuesEqual[T any](a, b T) bool { return core.ValuesEqual(a, b) }
