// Package correctables is the public API of the Correctables library: an
// abstraction for programming and speculating with replicated objects,
// reproducing "Incremental Consistency Guarantees for Replicated Objects"
// (Guerraoui, Pavlovic, Seredinschi — OSDI 2016).
//
// # Overview
//
// A Correctable generalizes a Promise: instead of one future value it
// represents several incremental views of the result of one operation on a
// replicated object, each view satisfying a stronger consistency level than
// the previous. Applications obtain Correctables through a Client bound to
// a storage binding:
//
//	client := correctables.NewClient(myBinding)
//
//	// Single-level access, one view:
//	c := client.InvokeWeak(ctx, correctables.Get{Key: "user:42"})
//	c := client.InvokeStrong(ctx, correctables.Get{Key: "user:42"})
//
//	// Incremental consistency guarantees (ICG), one view per level:
//	client.Invoke(ctx, correctables.Get{Key: "ads:7"}).
//		Speculate(fetchAds, nil).
//		OnFinal(func(v correctables.View) { deliver(v.Value) })
//
// Speculate hides the latency of strong consistency: the speculation
// function runs on the preliminary (fast, possibly stale) view, and is
// automatically re-executed if the final view diverges.
//
// # Bindings
//
// A binding encapsulates everything storage-specific (§5 of the paper):
// quorum sizes, cache coherence, leader forwarding. This repository ships
// bindings for a quorum-replicated key-value store modeled on Cassandra
// (internal/cassandra), a replicated queue service modeled on ZooKeeper
// (internal/zk), a causally consistent store with a client-side cache
// (internal/causal), and a confirmation-tracking blockchain
// (internal/chain). Implement the Binding interface to add another store.
package correctables

import (
	"correctables/internal/binding"
	"correctables/internal/core"
)

// Core types re-exported from the implementation packages.
type (
	// Correctable represents the progressively improving result of an
	// operation on a replicated object.
	Correctable = core.Correctable
	// Controller is the producer-side handle used by bindings and tests.
	Controller = core.Controller
	// View is one incremental view: a value plus its consistency level.
	View = core.View
	// Level identifies a consistency level.
	Level = core.Level
	// Levels is an ordered set of consistency levels.
	Levels = core.Levels
	// State is a Correctable lifecycle state.
	State = core.State
	// Callbacks bundles the OnUpdate/OnFinal/OnError callbacks.
	Callbacks = core.Callbacks
	// SpecFunc is a speculation function (see Correctable.Speculate).
	SpecFunc = core.SpecFunc
	// AbortFunc undoes a superseded speculation's side effects.
	AbortFunc = core.AbortFunc
	// Equaler customizes divergence checks for view values.
	Equaler = core.Equaler

	// Client is the application-facing, consistency-based interface.
	Client = binding.Client
	// Binding is the storage-binding interface (§5.1).
	Binding = binding.Binding
	// Operation is a request against a replicated object.
	Operation = binding.Operation
	// Result is one binding response.
	Result = binding.Result
	// Callback receives incremental results from a binding.
	Callback = binding.Callback

	// Get reads a key. Put writes a key. Enqueue/Dequeue operate on
	// replicated queue objects.
	Get     = binding.Get
	Put     = binding.Put
	Enqueue = binding.Enqueue
	Dequeue = binding.Dequeue
)

// Consistency levels, weakest to strongest.
const (
	LevelNone   = core.LevelNone
	LevelCache  = core.LevelCache
	LevelWeak   = core.LevelWeak
	LevelCausal = core.LevelCausal
	LevelStrong = core.LevelStrong
)

// Correctable lifecycle states (Figure 3 of the paper).
const (
	StateUpdating = core.StateUpdating
	StateFinal    = core.StateFinal
	StateError    = core.StateError
)

// Errors.
var (
	// ErrClosed is returned by Controller methods after closure.
	ErrClosed = core.ErrClosed
	// ErrNoView is returned when waiting for a level that never arrives.
	ErrNoView = core.ErrNoView
	// ErrUnsupportedOperation is wrapped by bindings rejecting an operation.
	ErrUnsupportedOperation = binding.ErrUnsupportedOperation
	// ErrUnsupportedLevel is wrapped by bindings rejecting a level.
	ErrUnsupportedLevel = binding.ErrUnsupportedLevel
)

// NewClient wraps a binding in the application-facing Client.
func NewClient(b Binding) *Client { return binding.NewClient(b) }

// New creates an unresolved Correctable and its Controller (for binding
// implementations and tests).
func New() (*Correctable, *Controller) { return core.New() }

// All aggregates several Correctables: updates carry the latest values of
// every child; the aggregate closes when all children have.
func All(cs ...*Correctable) *Correctable { return core.All(cs...) }

// Any mirrors whichever Correctable closes first.
func Any(cs ...*Correctable) *Correctable { return core.Any(cs...) }

// Resolved returns an already-final Correctable.
func Resolved(value interface{}, level Level) *Correctable { return core.Resolved(value, level) }

// Failed returns an already-errored Correctable.
func Failed(err error) *Correctable { return core.Failed(err) }

// ValuesEqual reports view-value equality as used for confirmation and
// misspeculation detection.
func ValuesEqual(a, b interface{}) bool { return core.ValuesEqual(a, b) }
