package correctables_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"correctables"
	"correctables/internal/cassandra"
	"correctables/internal/netsim"
	"correctables/internal/zk"
)

// newFacadeCluster builds a small CC deployment for facade-level tests.
func newFacadeCluster(t *testing.T) *correctables.Client {
	t.Helper()
	clock := netsim.NewClock(0.1)
	tr := netsim.NewTransport(clock, netsim.DefaultLatencies(), netsim.NewMeter(), 1)
	cluster, err := cassandra.NewCluster(cassandra.Config{
		Regions:          []netsim.Region{netsim.FRK, netsim.IRL, netsim.VRG},
		Transport:        tr,
		Correctable:      true,
		ConfirmationOpt:  true,
		ReadServiceTime:  50 * time.Microsecond,
		WriteServiceTime: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	cluster.Preload("k", []byte("v"))
	return correctables.NewClient(cassandra.NewBinding(
		cassandra.NewClient(cluster, netsim.IRL, netsim.FRK), cassandra.BindingConfig{}))
}

// TestFacadeEndToEnd: a typed end-to-end ICG read — Invoke[[]byte] via the
// Get operation, not a single type assertion anywhere.
func TestFacadeEndToEnd(t *testing.T) {
	client := newFacadeCluster(t)
	ctx := context.Background()

	cor := correctables.Invoke(ctx, client, correctables.Get{Key: "k"})
	v, err := cor.Final(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v.Level != correctables.LevelStrong || string(v.Value) != "v" {
		t.Errorf("final = %+v", v)
	}
	views := cor.Views()
	if len(views) != 2 || views[0].Level != correctables.LevelWeak {
		t.Errorf("views = %+v", views)
	}
	if cor.State() != correctables.StateFinal {
		t.Errorf("state = %v", cor.State())
	}
}

// TestFacadeSpeculate: the typed speculation path — []byte views in, string
// result out, still no assertions.
func TestFacadeSpeculate(t *testing.T) {
	client := newFacadeCluster(t)
	ctx := context.Background()
	out := correctables.Speculate(
		correctables.Invoke(ctx, client, correctables.Get{Key: "k"}),
		func(v correctables.View[[]byte]) (string, error) {
			return "spec:" + string(v.Value), nil
		}, nil)
	v, err := out.Final(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v.Value != "spec:v" {
		t.Errorf("speculation result = %v", v.Value)
	}
}

// TestFacadeTypedNoAssertions is the acceptance test of the typed redesign:
// an app can Invoke[[]byte] a Get, Speculate on it, wait on levels, and
// aggregate results, with every value statically typed end to end.
func TestFacadeTypedNoAssertions(t *testing.T) {
	client := newFacadeCluster(t)
	ctx := context.Background()

	// Invoke → Speculate: View[[]byte] in, []string out.
	words := correctables.Speculate(
		correctables.Invoke(ctx, client, correctables.Get{Key: "k"}),
		func(v correctables.View[[]byte]) ([]string, error) {
			return strings.Fields(string(v.Value)), nil
		}, nil)
	wv, err := words.Final(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(wv.Value) != 1 || wv.Value[0] != "v" {
		t.Errorf("speculated words = %v", wv.Value)
	}

	// WaitLevel returns the typed preliminary view.
	cor := correctables.Invoke(ctx, client, correctables.Get{Key: "k"})
	weak, err := cor.WaitLevel(ctx, correctables.LevelWeak)
	if err != nil {
		t.Fatal(err)
	}
	if string(weak.Value) != "v" {
		t.Errorf("weak view = %q", weak.Value)
	}

	// All aggregates typed children into a []T.
	g1 := correctables.InvokeStrong(ctx, client, correctables.Get{Key: "k"})
	g2 := correctables.InvokeStrong(ctx, client, correctables.Get{Key: "k"})
	all, err := correctables.All(g1, g2).Final(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Value) != 2 || string(all.Value[0]) != "v" || string(all.Value[1]) != "v" {
		t.Errorf("All = %v", all.Value)
	}
}

func TestFacadeCombinators(t *testing.T) {
	r1 := correctables.Resolved(1, correctables.LevelStrong)
	r2 := correctables.Resolved(2, correctables.LevelStrong)
	all, err := correctables.All(r1, r2).Final(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if all.Value[0] != 1 || all.Value[1] != 2 {
		t.Errorf("All = %v", all.Value)
	}
	anyV, err := correctables.Any(r1, r2).Final(context.Background())
	if err != nil || (anyV.Value != 1 && anyV.Value != 2) {
		t.Errorf("Any = %v, %v", anyV.Value, err)
	}
	boom := errors.New("x")
	if _, err := correctables.Failed[int](boom).Final(context.Background()); !errors.Is(err, boom) {
		t.Errorf("Failed = %v", err)
	}
	if !correctables.ValuesEqual([]byte("a"), []byte("a")) {
		t.Error("ValuesEqual broken")
	}
}

// TestFacadeAllWithFailedChild: All must fail as soon as any child fails,
// even when the other children close successfully afterwards.
func TestFacadeAllWithFailedChild(t *testing.T) {
	ok, okCtrl := correctables.New[int]()
	bad, badCtrl := correctables.New[int]()
	out := correctables.All(ok, bad)
	boom := errors.New("child down")
	if err := badCtrl.Fail(boom); err != nil {
		t.Fatal(err)
	}
	if err := okCtrl.Close(7, correctables.LevelStrong); err != nil {
		t.Fatal(err)
	}
	if _, err := out.Final(context.Background()); !errors.Is(err, boom) {
		t.Errorf("All with failed child = %v, want %v", err, boom)
	}
}

// TestFacadeAnyWithFailedChildren: Any must survive individual failures and
// mirror the surviving child; it fails only when every child has failed.
func TestFacadeAnyWithFailedChildren(t *testing.T) {
	c1, ctrl1 := correctables.New[string]()
	c2, ctrl2 := correctables.New[string]()
	out := correctables.Any(c1, c2)
	if err := ctrl1.Fail(errors.New("first down")); err != nil {
		t.Fatal(err)
	}
	if err := ctrl2.Close("survivor", correctables.LevelStrong); err != nil {
		t.Fatal(err)
	}
	v, err := out.Final(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v.Value != "survivor" {
		t.Errorf("Any = %q, want survivor", v.Value)
	}

	// All children failing: the last error surfaces.
	f1, fctrl1 := correctables.New[string]()
	f2, fctrl2 := correctables.New[string]()
	allFail := correctables.Any(f1, f2)
	_ = fctrl1.Fail(errors.New("e1"))
	last := errors.New("e2")
	_ = fctrl2.Fail(last)
	if _, err := allFail.Final(context.Background()); !errors.Is(err, last) {
		t.Errorf("Any all-failed = %v, want %v", err, last)
	}
}

// TestFacadeInvokeUnsupportedLevels: requesting a level the binding does
// not offer, or an effectively empty level set, fails the Correctable with
// ErrUnsupportedLevel.
func TestFacadeInvokeUnsupportedLevels(t *testing.T) {
	client := newFacadeCluster(t)
	ctx := context.Background()

	// Cassandra offers weak+strong only.
	cor := correctables.Invoke(ctx, client, correctables.Get{Key: "k"}, correctables.LevelCausal)
	if _, err := cor.Final(ctx); !errors.Is(err, correctables.ErrUnsupportedLevel) {
		t.Errorf("unsupported level err = %v", err)
	}

	// A level list that normalizes to the empty set (only LevelNone).
	cor = correctables.Invoke(ctx, client, correctables.Get{Key: "k"}, correctables.LevelNone)
	if _, err := cor.Final(ctx); !errors.Is(err, correctables.ErrUnsupportedLevel) {
		t.Errorf("empty level set err = %v", err)
	}
}

func TestFacadeControllerAndErrors(t *testing.T) {
	cor, ctrl := correctables.New[string]()
	if err := ctrl.Update("p", correctables.LevelWeak); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Close("f", correctables.LevelStrong); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Close("again", correctables.LevelStrong); !errors.Is(err, correctables.ErrClosed) {
		t.Errorf("second close = %v", err)
	}
	if _, err := cor.WaitLevel(context.Background(), correctables.LevelStrong); err != nil {
		t.Errorf("WaitLevel = %v", err)
	}
}

// parityEqualer judges equality on value parity — a custom Equaler[T].
type parityEqualer struct{ N int }

func (p parityEqualer) EqualValue(other parityEqualer) bool { return p.N%2 == other.N%2 }

// TestFacadeValuesEqualCustomEqualer: ValuesEqual consults Equaler[T] when
// implemented, bytes.Equal for []byte, and reflect.DeepEqual otherwise.
func TestFacadeValuesEqualCustomEqualer(t *testing.T) {
	if !correctables.ValuesEqual(parityEqualer{2}, parityEqualer{8}) {
		t.Error("custom Equaler[T] not consulted")
	}
	if correctables.ValuesEqual(parityEqualer{1}, parityEqualer{8}) {
		t.Error("custom Equaler[T] mismatch not detected")
	}
	// Structurally different but parity-equal — only the Equaler view makes
	// them equal, proving reflection was not used.
	if !correctables.ValuesEqual(parityEqualer{4}, parityEqualer{100}) {
		t.Error("Equaler should ignore structural differences")
	}
	// Fallbacks.
	if !correctables.ValuesEqual([]byte{1, 2}, []byte{1, 2}) || correctables.ValuesEqual([]byte{1}, []byte{2}) {
		t.Error("[]byte fast path broken")
	}
	type plain struct{ A, B int }
	if !correctables.ValuesEqual(plain{1, 2}, plain{1, 2}) || correctables.ValuesEqual(plain{1, 2}, plain{2, 1}) {
		t.Error("reflect fallback broken")
	}
	// Item judges identity, ignoring Data/Remaining.
	a := correctables.Item{ID: "q-1", Exists: true, Remaining: 4}
	b := correctables.Item{ID: "q-1", Data: []byte("x"), Exists: true}
	if !correctables.ValuesEqual(a, b) {
		t.Error("Item Equaler not consulted")
	}
}

func TestFacadeQueueOps(t *testing.T) {
	clock := netsim.NewClock(0.1)
	tr := netsim.NewTransport(clock, netsim.DefaultLatencies(), netsim.NewMeter(), 1)
	e, err := zk.NewEnsemble(zk.Config{
		Regions:      []netsim.Region{netsim.FRK, netsim.IRL, netsim.VRG},
		LeaderRegion: netsim.IRL,
		Transport:    tr,
		Correctable:  true,
		ServiceTime:  50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Bootstrap(zk.CreateTxn{Path: "/queues"})
	e.Bootstrap(zk.CreateTxn{Path: "/queues/q"})
	client := correctables.NewClient(zk.NewBinding(zk.NewQueueClient(e, netsim.IRL, netsim.FRK)))
	ctx := context.Background()

	if _, err := correctables.Invoke(ctx, client, correctables.Enqueue{Queue: "q", Item: []byte("x")}).Final(ctx); err != nil {
		t.Fatal(err)
	}
	v, err := correctables.Invoke(ctx, client, correctables.Dequeue{Queue: "q"}).Final(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Value.Exists || string(v.Value.Data) != "x" {
		t.Errorf("dequeue = %+v", v.Value)
	}
}

// TestFacadeSession: the session API works end to end over a real binding
// through the root package — a session read after a session write observes
// the write at every delivered level.
func TestFacadeSession(t *testing.T) {
	client := newFacadeCluster(t)
	ctx := context.Background()
	sess := correctables.NewSession(client)
	if _, err := sess.Put(ctx, "sess-k", []byte("mine")).Final(ctx); err != nil {
		t.Fatal(err)
	}
	floor := sess.Floor("sess-k")
	if floor == 0 {
		t.Fatal("session write did not raise the floor")
	}
	cor := sess.Get(ctx, "sess-k")
	if v, err := cor.Final(ctx); err != nil || string(v.Value) != "mine" {
		t.Fatalf("session read = %+v, %v", v, err)
	}
	for _, v := range cor.Views() {
		if string(v.Value) != "mine" {
			t.Errorf("session view %v delivered %q, want the session's own write", v.Level, v.Value)
		}
	}
}

func TestFacadeLevelOrdering(t *testing.T) {
	if !correctables.LevelStrong.StrongerThan(correctables.LevelWeak) {
		t.Error("level ordering broken")
	}
	ls := correctables.Levels{correctables.LevelStrong, correctables.LevelCache}
	if ls.Weakest() != correctables.LevelCache || ls.Strongest() != correctables.LevelStrong {
		t.Error("Levels helpers broken")
	}
}
