package correctables_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"correctables"
	"correctables/internal/cassandra"
	"correctables/internal/netsim"
	"correctables/internal/zk"
)

// newFacadeCluster builds a small CC deployment for facade-level tests.
func newFacadeCluster(t *testing.T) *correctables.Client {
	t.Helper()
	clock := netsim.NewClock(0.1)
	tr := netsim.NewTransport(clock, netsim.DefaultLatencies(), netsim.NewMeter(), 1)
	cluster, err := cassandra.NewCluster(cassandra.Config{
		Regions:          []netsim.Region{netsim.FRK, netsim.IRL, netsim.VRG},
		Transport:        tr,
		Correctable:      true,
		ConfirmationOpt:  true,
		ReadServiceTime:  50 * time.Microsecond,
		WriteServiceTime: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	cluster.Preload("k", []byte("v"))
	return correctables.NewClient(cassandra.NewBinding(
		cassandra.NewClient(cluster, netsim.IRL, netsim.FRK), cassandra.BindingConfig{}))
}

func TestFacadeEndToEnd(t *testing.T) {
	client := newFacadeCluster(t)
	ctx := context.Background()

	cor := client.Invoke(ctx, correctables.Get{Key: "k"})
	v, err := cor.Final(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v.Level != correctables.LevelStrong || string(v.Value.([]byte)) != "v" {
		t.Errorf("final = %+v", v)
	}
	views := cor.Views()
	if len(views) != 2 || views[0].Level != correctables.LevelWeak {
		t.Errorf("views = %+v", views)
	}
	if cor.State() != correctables.StateFinal {
		t.Errorf("state = %v", cor.State())
	}
}

func TestFacadeSpeculate(t *testing.T) {
	client := newFacadeCluster(t)
	ctx := context.Background()
	out := client.Invoke(ctx, correctables.Get{Key: "k"}).
		Speculate(func(v correctables.View) (interface{}, error) {
			return "spec:" + string(v.Value.([]byte)), nil
		}, nil)
	v, err := out.Final(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v.Value != "spec:v" {
		t.Errorf("speculation result = %v", v.Value)
	}
}

func TestFacadeCombinators(t *testing.T) {
	r1 := correctables.Resolved(1, correctables.LevelStrong)
	r2 := correctables.Resolved(2, correctables.LevelStrong)
	all, err := correctables.All(r1, r2).Final(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	vals := all.Value.([]interface{})
	if vals[0] != 1 || vals[1] != 2 {
		t.Errorf("All = %v", vals)
	}
	any, err := correctables.Any(r1, r2).Final(context.Background())
	if err != nil || (any.Value != 1 && any.Value != 2) {
		t.Errorf("Any = %v, %v", any.Value, err)
	}
	boom := errors.New("x")
	if _, err := correctables.Failed(boom).Final(context.Background()); !errors.Is(err, boom) {
		t.Errorf("Failed = %v", err)
	}
	if !correctables.ValuesEqual([]byte("a"), []byte("a")) {
		t.Error("ValuesEqual broken")
	}
}

func TestFacadeControllerAndErrors(t *testing.T) {
	cor, ctrl := correctables.New()
	if err := ctrl.Update("p", correctables.LevelWeak); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Close("f", correctables.LevelStrong); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Close("again", correctables.LevelStrong); !errors.Is(err, correctables.ErrClosed) {
		t.Errorf("second close = %v", err)
	}
	if _, err := cor.WaitLevel(context.Background(), correctables.LevelStrong); err != nil {
		t.Errorf("WaitLevel = %v", err)
	}
}

func TestFacadeQueueOps(t *testing.T) {
	clock := netsim.NewClock(0.1)
	tr := netsim.NewTransport(clock, netsim.DefaultLatencies(), netsim.NewMeter(), 1)
	e, err := zk.NewEnsemble(zk.Config{
		Regions:      []netsim.Region{netsim.FRK, netsim.IRL, netsim.VRG},
		LeaderRegion: netsim.IRL,
		Transport:    tr,
		Correctable:  true,
		ServiceTime:  50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Bootstrap(zk.CreateTxn{Path: "/queues"})
	e.Bootstrap(zk.CreateTxn{Path: "/queues/q"})
	client := correctables.NewClient(zk.NewBinding(zk.NewQueueClient(e, netsim.IRL, netsim.FRK)))
	ctx := context.Background()

	if _, err := client.Invoke(ctx, correctables.Enqueue{Queue: "q", Item: []byte("x")}).Final(ctx); err != nil {
		t.Fatal(err)
	}
	v, err := client.Invoke(ctx, correctables.Dequeue{Queue: "q"}).Final(ctx)
	if err != nil {
		t.Fatal(err)
	}
	res := v.Value.(zk.QueueResult)
	if res.Element == nil || string(res.Element.Data) != "x" {
		t.Errorf("dequeue = %+v", res)
	}
}

func TestFacadeLevelOrdering(t *testing.T) {
	if !correctables.LevelStrong.StrongerThan(correctables.LevelWeak) {
		t.Error("level ordering broken")
	}
	ls := correctables.Levels{correctables.LevelStrong, correctables.LevelCache}
	if ls.Weakest() != correctables.LevelCache || ls.Strongest() != correctables.LevelStrong {
		t.Error("Levels helpers broken")
	}
}
